"""Tests for the §II-C resolution strategy chain and explain surface.

Covers the reason-code vocabulary, the compact trace, the pinned skip
rule (an NER-detected unit that fails to resolve must skip phrase-scan
and bare-count — ISSUE 5 satellite), and the verbose
``explain_line`` report driven by the same chain.
"""

from __future__ import annotations

import pytest

from repro.core.estimator import (
    STATUS_FULL,
    STATUS_NAME_ONLY,
    STATUS_UNMATCHED,
    NutritionEstimator,
    ParsedIngredient,
)
from repro.core.explain import explain_line
from repro.core.resolution import (
    MATCH_FAILURE_REASONS,
    OUTCOME_IMPLAUSIBLE,
    OUTCOME_NEVER_OBSERVED,
    OUTCOME_RESOLVED,
    OUTCOME_SKIPPED,
    OUTCOME_UNRESOLVABLE,
    REASON_BARE_COUNT,
    REASON_CORPUS_UNIT,
    REASON_NER_UNIT,
    REASON_NO_MATCH,
    REASON_NO_NAME,
    REASON_PHRASE_SCAN,
    REASON_PLAUSIBILITY_RESCUE,
    RESOLUTION_REASONS,
    run_unit_chain,
    trace_event,
)
from repro.units.fallback import UnitFallback


def _parsed(text, name="butter", unit="", quantity="1", size=""):
    return ParsedIngredient(
        text=text,
        tokens=tuple(text.split()),
        tags=tuple("O" for _ in text.split()),
        name=name,
        state="",
        unit=unit,
        quantity=quantity,
        temperature="",
        dry_fresh="",
        size=size,
    )


@pytest.fixture(scope="module")
def butter_resolver():
    estimator = NutritionEstimator()
    match = estimator.matcher.match("butter", "")
    return estimator.resolver_for(match.food.ndb_no)


class TestReasonVocabulary:
    def test_reason_codes_are_disjoint(self):
        assert not set(RESOLUTION_REASONS) & set(MATCH_FAILURE_REASONS)

    def test_trace_events_are_interned(self):
        a = trace_event(REASON_NER_UNIT, OUTCOME_RESOLVED)
        b = trace_event(REASON_NER_UNIT, OUTCOME_RESOLVED)
        assert a is b
        assert a == "ner-unit:resolved"


class TestChain:
    def test_ner_unit_resolves(self, butter_resolver):
        result = run_unit_chain(
            _parsed("2 cups butter", unit="cups"),
            butter_resolver, 2.0, UnitFallback(),
        )
        assert result.resolution.unit == "cup"
        assert result.reason == REASON_NER_UNIT
        assert result.trace == ("ner-unit:resolved",)
        assert not result.used_corpus_unit

    def test_phrase_scan_recovers_missing_ner_unit(self, butter_resolver):
        # NER produced no unit; the raw phrase carries a literal "cup"
        # (the scan's precision guard requires the exact alias spelling).
        result = run_unit_chain(
            _parsed("butter , 1 cup"), butter_resolver, 1.0, UnitFallback()
        )
        assert result.reason == REASON_PHRASE_SCAN
        assert result.trace == ("phrase-scan:resolved",)

    def test_bare_count_after_failed_scan(self):
        estimator = NutritionEstimator()
        match = estimator.matcher.match("eggs", "")
        resolver = estimator.resolver_for(match.food.ndb_no)
        result = run_unit_chain(
            _parsed("2 eggs", name="eggs"), resolver, 2.0, UnitFallback()
        )
        assert result.reason == REASON_BARE_COUNT
        assert result.trace == (
            "phrase-scan:no-unit", "bare-count:resolved",
        )

    def test_failed_ner_unit_skips_scan_and_bare_count(self, butter_resolver):
        """Pinned behavior (ISSUE 5 satellite): an NER-detected unit
        that fails to resolve must NOT fall through to the phrase scan
        or the bare count — even when the raw phrase contains a
        scannable unit that would have resolved."""
        parsed = _parsed("1 head butter cup", unit="head")
        result = run_unit_chain(parsed, butter_resolver, 1.0, UnitFallback())
        assert result.resolution is None
        assert result.trace[0] == f"{REASON_NER_UNIT}:{OUTCOME_UNRESOLVABLE}"
        assert not any(
            event.startswith((REASON_PHRASE_SCAN, REASON_BARE_COUNT))
            for event in result.trace
        )

    def test_implausible_candidate_rescued_by_scan(self):
        estimator = NutritionEstimator()
        match = estimator.matcher.match("water", "")
        resolver = estimator.resolver_for(match.food.ndb_no)
        # 500 cups of water is >100 kg; the phrase scan re-finds "cups"
        # so there is no distinct rescue and the line dies at the gate.
        result = run_unit_chain(
            _parsed("500 cups water", name="water", unit="cups", quantity="500"),
            resolver, 500.0, UnitFallback(),
        )
        assert result.resolution is None
        assert result.reason == REASON_CORPUS_UNIT  # last strategy that failed
        assert f"{REASON_NER_UNIT}:{OUTCOME_IMPLAUSIBLE}" in result.trace
        assert (
            f"{REASON_PLAUSIBILITY_RESCUE}:{OUTCOME_UNRESOLVABLE}"
            in result.trace
        )
        # "500 g or 1 cup"-style: the scan finds the plausible gram.
        rescued = run_unit_chain(
            _parsed("500 g water or 1 cup", name="water", unit="cups",
                    quantity="500"),
            resolver, 500.0, UnitFallback(),
        )
        assert rescued.resolution.unit == "gram"
        assert rescued.reason == REASON_PLAUSIBILITY_RESCUE

    def test_corpus_frequent_unit_resolves_and_flags(self, butter_resolver):
        fallback = UnitFallback()
        fallback.observe("butter", "tablespoon", 3)
        result = run_unit_chain(
            _parsed("1 knob butter", unit="knob"),
            butter_resolver, 1.0, fallback,
        )
        assert result.resolution.unit == "tablespoon"
        assert result.reason == REASON_CORPUS_UNIT
        assert result.used_corpus_unit
        assert result.trace[-1] == f"{REASON_CORPUS_UNIT}:{OUTCOME_RESOLVED}"

    def test_collect_pass_never_consults_corpus_table(self, butter_resolver):
        fallback = UnitFallback()
        fallback.observe("butter", "tablespoon", 3)
        result = run_unit_chain(
            _parsed("1 knob butter", unit="knob"),
            butter_resolver, 1.0, fallback, consult_fallback=False,
        )
        assert result.resolution is None
        assert result.reason == REASON_NER_UNIT
        assert not any(
            event.startswith(REASON_CORPUS_UNIT) for event in result.trace
        )

    def test_never_observed_ingredient_fails_with_reason(self, butter_resolver):
        result = run_unit_chain(
            _parsed("1 knob butter", unit="knob"),
            butter_resolver, 1.0, UnitFallback(),
        )
        assert result.resolution is None
        assert result.reason == REASON_CORPUS_UNIT
        assert result.trace[-1] == (
            f"{REASON_CORPUS_UNIT}:{OUTCOME_NEVER_OBSERVED}"
        )


class TestFastPathEquivalence:
    """The fused recorder-free fast path and the declarative recorded
    driver must be the same chain: identical ChainResult over a corpus
    plus the handcrafted edge lines, with and without corpus stats."""

    def _assert_same(self, estimator, parsed, fallback, consult):
        from repro.core.explain import _StageRecorder

        match = estimator.matcher.match(
            parsed.name, parsed.state, parsed.temperature, parsed.dry_fresh
        )
        if match is None:
            return
        resolver = estimator.resolver_for(match.food.ndb_no)
        from repro.text.quantity import try_parse_quantity

        quantity = (
            try_parse_quantity(parsed.quantity) if parsed.quantity else None
        )
        if quantity is None:
            quantity = 1.0
        fast = run_unit_chain(
            parsed, resolver, quantity, fallback, consult
        )
        recorded = run_unit_chain(
            parsed, resolver, quantity, fallback, consult,
            recorder=_StageRecorder(),
        )
        assert fast.resolution == recorded.resolution
        assert fast.reason == recorded.reason
        assert fast.trace == recorded.trace
        assert fast.used_corpus_unit == recorded.used_corpus_unit

    def test_equivalent_over_corpus_and_edge_lines(self):
        from repro.recipedb.generator import GeneratorConfig, RecipeGenerator

        estimator = NutritionEstimator()
        recipes = RecipeGenerator(config=GeneratorConfig(seed=13)).generate(40)
        texts = {t for r in recipes for t in r.ingredient_texts}
        texts.update([
            "1 head butter cup",
            "500 cups water",
            "500 g water or 1 cup",
            "2 eggs",
            "1 small onion , finely chopped",
            "1 (15 ounce) can black beans",
        ])
        stats = UnitFallback()
        stats.observe("butter", "tablespoon", 2)
        stats.observe("water", "gram", 2)
        empty = UnitFallback()
        for text in sorted(texts):
            parsed = estimator.parse(text)
            if not parsed.name:
                continue
            for fallback in (empty, stats):
                for consult in (True, False):
                    self._assert_same(estimator, parsed, fallback, consult)


class TestEstimatorProvenance:
    """Reason codes as carried on real IngredientEstimate objects."""

    @pytest.fixture(scope="class")
    def estimator(self):
        return NutritionEstimator()

    def test_every_estimate_carries_a_reason(self, estimator):
        from repro.recipedb.generator import GeneratorConfig, RecipeGenerator

        recipes = RecipeGenerator(config=GeneratorConfig(seed=2)).generate(20)
        for estimate in estimator.estimate_corpus(recipes):
            for ingredient in estimate.ingredients:
                assert ingredient.reason
                assert ingredient.trace
                if ingredient.status == STATUS_FULL:
                    assert ingredient.reason in RESOLUTION_REASONS
                elif ingredient.status == STATUS_UNMATCHED:
                    assert ingredient.reason in MATCH_FAILURE_REASONS

    def test_no_name_reason(self, estimator):
        estimate = estimator.estimate_ingredient("2 cups")
        assert estimate.status == STATUS_UNMATCHED
        assert estimate.reason == REASON_NO_NAME
        assert estimate.trace == (REASON_NO_NAME,)

    def test_no_match_reason(self, estimator):
        estimate = estimator.estimate_ingredient("2 teaspoons garam masala")
        assert estimate.status == STATUS_UNMATCHED
        assert estimate.reason == REASON_NO_MATCH
        assert estimate.trace == (REASON_NO_MATCH,)

    def test_pinned_skip_behavior_end_to_end(self, estimator):
        """The stock tagger tags "can" as the unit; black beans have no
        can portion.  The phrase contains a scannable "ounce" that
        would resolve as a mass — the pinned rule forbids using it."""
        estimate = estimator.estimate_ingredient("1 (15 ounce) can black beans")
        assert estimate.status == STATUS_NAME_ONLY
        assert estimate.trace[0] == "ner-unit:unresolvable"
        assert not any("phrase-scan" in event for event in estimate.trace)
        assert not any("bare-count" in event for event in estimate.trace)

    def test_provenance_never_changes_the_numbers(self, estimator):
        """Reason/trace are carried alongside results; two estimates
        differing only in how they were produced stay numerically
        equal (the refactor's parity contract, spot-checked)."""
        a = estimator.estimate_ingredient("2 cups all-purpose flour")
        b = NutritionEstimator().estimate_ingredient("2 cups all-purpose flour")
        assert a == b
        assert a.grams == pytest.approx(250.0)


class TestExplainLine:
    @pytest.fixture(scope="class")
    def estimator(self):
        return NutritionEstimator()

    def test_resolved_line_report(self, estimator):
        explanation = explain_line(estimator, "2 cups all-purpose flour")
        assert explanation.estimate.status == STATUS_FULL
        assert explanation.estimate.reason == REASON_NER_UNIT
        stages = {r.stage: r for r in explanation.stages}
        assert stages[REASON_NER_UNIT].outcome == OUTCOME_RESOLVED
        assert stages[REASON_PHRASE_SCAN].outcome == OUTCOME_SKIPPED
        rendered = explanation.render()
        assert "winner:" in rendered
        assert "verdict: status=matched reason=ner-unit" in rendered

    def test_explain_matches_estimate_without_context(self, estimator):
        """No context == the single-line corpus protocol: the explain
        estimate must equal /v1/estimate's per-line outcome."""
        for text in (
            "2 cups all-purpose flour",
            "1 (15 ounce) can black beans",
            "500 cups water",
            "2 eggs",
        ):
            table = NutritionEstimator().corpus_estimate_table({text: 1})
            assert explain_line(estimator, text).estimate == table[text]

    def test_context_feeds_corpus_statistics(self, estimator):
        # "head" is tagged as the unit and has no gram weight for
        # butter; the pinned rule blocks the scannable "cup", so only
        # corpus statistics (from the context lines) can rescue it.
        without = explain_line(estimator, "1 head butter cup")
        with_ctx = explain_line(
            estimator,
            "1 head butter cup",
            context=["2 tablespoons butter", "3 tablespoons butter , melted"],
        )
        assert without.estimate.status == STATUS_NAME_ONLY
        assert with_ctx.estimate.status == STATUS_FULL
        assert with_ctx.estimate.reason == REASON_CORPUS_UNIT
        assert with_ctx.estimate.used_fallback_unit
        assert with_ctx.context_lines == 2
        assert "corpus-frequent-unit" in with_ctx.render()

    def test_explain_does_not_touch_live_fallback_table(self, estimator):
        before = estimator.fallback.snapshot()
        explain_line(
            estimator, "1 knob butter", context=["2 tablespoons butter"]
        )
        assert estimator.fallback.snapshot() == before

    def test_unmatched_reports(self, estimator):
        no_name = explain_line(estimator, "2 cups")
        assert no_name.estimate.reason == REASON_NO_NAME
        assert no_name.match_explanation is None
        assert no_name.stages == ()
        no_match = explain_line(estimator, "2 teaspoons garam masala")
        assert no_match.estimate.reason == REASON_NO_MATCH
        assert no_match.match_explanation is not None
        assert "UNMATCHED" in no_match.render()
