"""Tests for the perceptron, CRF and rule-based taggers."""

import pytest

from repro.ner.corpus import TaggedPhrase
from repro.ner.crf import LinearChainCRF
from repro.ner.metrics import evaluate
from repro.ner.perceptron import AveragedPerceptronTagger
from repro.ner.rule_tagger import RuleBasedTagger


@pytest.fixture(scope="module")
def training_phrases(generator):
    return [item.tagged for item in generator.generate_phrases(400)]


class TestRuleTagger:
    def test_table_i_simple_rows(self):
        tagger = RuleBasedTagger()
        assert tagger.predict(["1", "teaspoon", "salt"]) == [
            "QUANTITY", "UNIT", "NAME"]
        assert tagger.predict(["1/2", "lb", "lean", "ground", "beef"]) == [
            "QUANTITY", "UNIT", "STATE", "STATE", "NAME"]
        assert tagger.predict(
            ["1", "tablespoon", "cold", "water"]) == [
            "QUANTITY", "UNIT", "TEMP", "NAME"]
        assert tagger.predict(
            ["1", "tablespoon", "fresh", "dill", "weed"]) == [
            "QUANTITY", "UNIT", "DF", "NAME", "NAME"]

    def test_packaging_parenthetical_zeroed(self):
        tags = RuleBasedTagger().predict(
            ["1", "(", "15", "ounce", ")", "can", "black", "beans"])
        assert tags[2] == "O" and tags[3] == "O"
        assert tags[5] == "UNIT"

    def test_fl_oz(self):
        tags = RuleBasedTagger().predict(["4", "fl", "oz", "milk"])
        assert tags[1] == "UNIT" and tags[2] == "UNIT"

    def test_unit_without_number_becomes_name(self):
        assert RuleBasedTagger().predict(["garlic", "clove"]) == [
            "NAME", "NAME"]

    def test_tag_phrase_wrapper(self):
        phrase = RuleBasedTagger().tag_phrase(["1", "cup", "sugar"])
        assert isinstance(phrase, TaggedPhrase)


class TestPerceptron:
    def test_learns_corpus(self, training_phrases):
        tagger = AveragedPerceptronTagger()
        tagger.train(training_phrases[:320], epochs=5)
        predicted = [
            TaggedPhrase(p.tokens, tuple(tagger.predict(p.tokens)))
            for p in training_phrases[320:]
        ]
        report = evaluate(training_phrases[320:], predicted)
        assert report.token_accuracy > 0.95
        assert report.entity_f1 > 0.90

    def test_beats_rules(self, training_phrases):
        tagger = AveragedPerceptronTagger()
        tagger.train(training_phrases[:320], epochs=5)
        test = training_phrases[320:]
        learned = evaluate(test, [
            TaggedPhrase(p.tokens, tuple(tagger.predict(p.tokens))) for p in test])
        rules = evaluate(test, [
            TaggedPhrase(p.tokens, tuple(RuleBasedTagger().predict(p.tokens)))
            for p in test])
        assert learned.entity_f1 >= rules.entity_f1

    def test_deterministic_given_seed(self, training_phrases):
        a = AveragedPerceptronTagger(seed=3)
        b = AveragedPerceptronTagger(seed=3)
        a.train(training_phrases[:100], epochs=2)
        b.train(training_phrases[:100], epochs=2)
        tokens = list(training_phrases[200].tokens)
        assert a.predict(tokens) == b.predict(tokens)

    def test_empty_input(self, training_phrases):
        tagger = AveragedPerceptronTagger()
        tagger.train(training_phrases[:50], epochs=1)
        assert tagger.predict([]) == []

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            AveragedPerceptronTagger().train([])

    def test_bad_epochs_rejected(self, training_phrases):
        with pytest.raises(ValueError):
            AveragedPerceptronTagger().train(training_phrases[:10], epochs=0)


class TestCRF:
    def test_learns_small_corpus(self, training_phrases):
        crf = LinearChainCRF(max_iter=30)
        crf.train(training_phrases[:150])
        predicted = [
            TaggedPhrase(p.tokens, tuple(crf.predict(p.tokens)))
            for p in training_phrases[150:200]
        ]
        report = evaluate(training_phrases[150:200], predicted)
        assert report.token_accuracy > 0.9

    def test_untrained_predict_raises(self):
        with pytest.raises(RuntimeError):
            LinearChainCRF().predict(["1", "cup"])

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            LinearChainCRF().train([])

    def test_negative_l2_rejected(self):
        with pytest.raises(ValueError):
            LinearChainCRF(l2=-1.0)

    def test_empty_sequence(self, training_phrases):
        crf = LinearChainCRF(max_iter=5)
        crf.train(training_phrases[:30])
        assert crf.predict([]) == []
