"""Tests for repro.usda schema and database."""

import pytest

from repro.usda.database import DuplicateFoodError, NutrientDatabase
from repro.usda.schema import FoodItem, Portion


def _food(ndb="99999", desc="Test food, raw", group="Test"):
    return FoodItem(
        ndb_no=ndb,
        description=desc,
        food_group=group,
        nutrients={"energy_kcal": 100.0, "protein_g": 5.0},
        portions=(Portion(1, 1.0, "cup", 120.0), Portion(2, 2.0, "tbsp", 16.0)),
    )


class TestPortion:
    def test_grams_per_amount(self):
        assert Portion(1, 2.0, "tbsp", 30.0).grams_per_amount == 15.0

    def test_zero_amount_raises(self):
        with pytest.raises(ValueError):
            Portion(1, 0.0, "cup", 10.0).grams_per_amount


class TestFoodItem:
    def test_terms_split(self):
        food = _food(desc="Butter, whipped, with salt")
        assert food.terms == ["Butter", "whipped", "with salt"]

    def test_unknown_nutrient_rejected(self):
        with pytest.raises(ValueError):
            FoodItem("1", "X", "G", nutrients={"bogus": 1.0})

    def test_energy_default_zero(self):
        food = FoodItem("1", "X", "G")
        assert food.energy_kcal == 0.0

    def test_nutrient_per_gram(self):
        assert _food().nutrient_per_gram("energy_kcal") == 1.0
        assert _food().nutrient_per_gram("fat_g") == 0.0

    def test_portion_units(self):
        assert _food().portion_units() == ["cup", "tbsp"]


class TestNutrientDatabase:
    def test_insertion_order_preserved(self):
        a, b = _food("00001", "A"), _food("00002", "B")
        db = NutrientDatabase([a, b])
        assert list(db) == [a, b]
        assert db.index_of("00001") == 0
        assert db.index_of("00002") == 1

    def test_duplicate_rejected(self):
        db = NutrientDatabase([_food("00001")])
        with pytest.raises(DuplicateFoodError):
            db.add(_food("00001"))

    def test_lookup(self):
        db = NutrientDatabase([_food("00007", "Special, raw")])
        assert db.get("00007").description == "Special, raw"
        assert "00007" in db
        assert "99998" not in db
        assert db.by_description("Special, raw").ndb_no == "00007"
        with pytest.raises(KeyError):
            db.by_description("nope")

    def test_find_substring(self):
        db = NutrientDatabase([_food("00001", "Butter, salted"),
                               _food("00002", "Cheese, blue")])
        assert [f.ndb_no for f in db.find("butter")] == ["00001"]

    def test_vocabulary_lowercase_alpha(self):
        db = NutrientDatabase([_food(desc='Pat (1" sq), raw')])
        vocab = db.vocabulary()
        assert "pat" in vocab and "raw" in vocab
        for word in vocab:
            assert word.isalpha() and word == word.lower()


class TestDefaultDatabase:
    def test_loads_and_caches(self, db):
        from repro.usda.database import load_default_database

        assert load_default_database() is db
        assert len(db) > 300

    def test_21_food_groups(self, db):
        assert len(db.food_groups()) == 21

    def test_sr_index_order_constraints(self, db):
        # Heuristic (i) depends on these orderings.
        assert db.index_of("09003") < db.index_of("09004")  # apples w/ < w/o skin
        assert db.index_of("01123") < db.index_of("01124")  # whole < white
        assert db.index_of("01123") < db.index_of("01125")  # whole < yolk
        assert db.index_of("16087") < db.index_of("16098")  # peanuts < p.butter


class TestIndexedLookups:
    """Dict-backed by_description and cached vocabulary (PR 1)."""

    def test_by_description_duplicate_keeps_first(self):
        # The seed linear scan returned the first (lowest SR index)
        # food on duplicate descriptions; the dict must agree.
        db = NutrientDatabase([_food("00001", "Same, raw"),
                               _food("00002", "Same, raw")])
        assert db.by_description("Same, raw").ndb_no == "00001"

    def test_by_description_sees_late_adds(self):
        db = NutrientDatabase([_food("00001", "First, raw")])
        db.add(_food("00002", "Second, raw"))
        assert db.by_description("Second, raw").ndb_no == "00002"
        with pytest.raises(KeyError):
            db.by_description("Third, raw")

    def test_vocabulary_cached_and_invalidated(self):
        db = NutrientDatabase([_food("00001", "Butter, salted")])
        first = db.vocabulary()
        assert first is db.vocabulary()  # cached object reused
        db.add(_food("00002", "Quinoa, uncooked"))
        second = db.vocabulary()
        assert second is not first
        assert "quinoa" in second and "quinoa" not in first
