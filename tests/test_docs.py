"""Documentation guardrails: required docs exist, intra-repo links resolve.

Runs the same check as ``tools/check_docs.py`` (and the CI docs job)
inside the tier-1 suite, so a renamed doc or a typoed relative link
fails before it reaches CI.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs", module)
    spec.loader.exec_module(module)
    return module


check_docs = _load_check_docs()


def test_required_documentation_exists():
    for relative in (
        "README.md",
        "docs/architecture.md",
        "docs/api.md",
        "docs/performance.md",
        "CHANGES.md",
        "ROADMAP.md",
    ):
        assert (REPO_ROOT / relative).is_file(), f"missing {relative}"


def test_markdown_files_discovered():
    files = {p.name for p in check_docs.markdown_files(REPO_ROOT)}
    assert {"README.md", "architecture.md", "api.md"} <= files


def test_no_broken_intra_repo_links():
    problems = check_docs.broken_links(REPO_ROOT)
    assert not problems, "\n".join(problems)


def test_link_extraction_handles_anchors_and_externals(tmp_path):
    (tmp_path / "real.md").write_text("target\n", encoding="utf-8")
    (tmp_path / "doc.md").write_text(
        "[ok](real.md) [anchored](real.md#section) [page](#local)\n"
        "[ext](https://example.com/x.md) [bad](missing.md)\n",
        encoding="utf-8",
    )
    problems = check_docs.broken_links(tmp_path)
    assert len(problems) == 1
    assert "missing.md" in problems[0]


def test_readme_links_into_docs():
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for target in ("docs/architecture.md", "docs/api.md",
                   "docs/performance.md"):
        assert target in text, f"README.md does not link {target}"
