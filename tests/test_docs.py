"""Documentation guardrails: required docs exist, intra-repo links resolve.

Runs the same check as ``tools/check_docs.py`` (and the CI docs job)
inside the tier-1 suite, so a renamed doc or a typoed relative link
fails before it reaches CI.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs", module)
    spec.loader.exec_module(module)
    return module


check_docs = _load_check_docs()


def test_required_documentation_exists():
    for relative in (
        "README.md",
        "docs/architecture.md",
        "docs/api.md",
        "docs/performance.md",
        "docs/operations.md",
        "docs/artifact-format.md",
        "CHANGES.md",
        "ROADMAP.md",
    ):
        assert (REPO_ROOT / relative).is_file(), f"missing {relative}"


def test_markdown_files_discovered():
    files = {p.name for p in check_docs.markdown_files(REPO_ROOT)}
    assert {"README.md", "architecture.md", "api.md"} <= files


def test_no_broken_intra_repo_links():
    problems = check_docs.broken_links(REPO_ROOT)
    assert not problems, "\n".join(problems)


def test_link_extraction_handles_anchors_and_externals(tmp_path):
    (tmp_path / "real.md").write_text("target\n", encoding="utf-8")
    (tmp_path / "doc.md").write_text(
        "[ok](real.md) [anchored](real.md#section) [page](#local)\n"
        "[ext](https://example.com/x.md) [bad](missing.md)\n",
        encoding="utf-8",
    )
    problems = check_docs.broken_links(tmp_path)
    assert len(problems) == 1
    assert "missing.md" in problems[0]


def test_readme_links_into_docs():
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for target in ("docs/architecture.md", "docs/api.md",
                   "docs/performance.md", "docs/operations.md",
                   "docs/artifact-format.md"):
        assert target in text, f"README.md does not link {target}"


class TestSnippetChecker:
    """The fenced-```python``` compile check (snippet-rot guard)."""

    def test_all_repo_snippets_compile(self):
        problems = check_docs.broken_snippets(REPO_ROOT)
        assert not problems, "\n".join(problems)

    def test_repo_docs_actually_contain_snippets(self):
        """The guard must be exercising real blocks, not vacuously
        passing because extraction silently matched nothing."""
        total = sum(
            len(
                check_docs.extract_python_snippets(
                    path.read_text(encoding="utf-8")
                )
            )
            for path in check_docs.markdown_files(REPO_ROOT)
        )
        assert total >= 5, f"only {total} python snippets found"

    def test_extraction_ignores_other_languages(self):
        text = (
            "```sh\nnot = python +\n```\n"
            "```json\n{\"a\": 1}\n```\n"
            "```\nplain fence\n```\n"
            "```python\nx = 1\n```\n"
        )
        snippets = check_docs.extract_python_snippets(text)
        assert len(snippets) == 1
        assert snippets[0][1] == "x = 1\n"

    def test_syntax_error_is_reported_with_location(self, tmp_path):
        (tmp_path / "bad.md").write_text(
            "intro\n\n```python\ndef broken(:\n```\n", encoding="utf-8"
        )
        problems = check_docs.broken_snippets(tmp_path)
        assert len(problems) == 1
        assert "bad.md:4" in problems[0]
        assert "does not compile" in problems[0]

    def test_doctest_blocks_are_reassembled(self, tmp_path):
        (tmp_path / "doctest.md").write_text(
            "```python\n"
            ">>> x = [1, 2]\n"
            ">>> for item in x:\n"
            "...     print(item)\n"
            "1\n"
            "2\n"
            "```\n",
            encoding="utf-8",
        )
        assert check_docs.broken_snippets(tmp_path) == []

    def test_ellipsis_and_annotations_compile(self, tmp_path):
        (tmp_path / "frag.md").write_text(
            "```python\n"
            "def handler(payload: dict) -> dict:\n"
            "    ...\n"
            "```\n",
            encoding="utf-8",
        )
        assert check_docs.broken_snippets(tmp_path) == []

    def test_main_exit_code_covers_snippets(self, tmp_path, monkeypatch,
                                            capsys):
        (tmp_path / "bad.md").write_text(
            "```python\n1 +\n```\n", encoding="utf-8"
        )
        monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
        assert check_docs.main() == 1
        assert "snippet does not compile" in capsys.readouterr().out
