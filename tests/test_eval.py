"""Tests for the evaluation harness (metrics, tables, figures, gold)."""

import pytest

from repro.eval.gold import select_evaluation_recipes
from repro.eval.metrics import (
    calorie_error_report,
    match_accuracy,
    metric_divergence,
    unique_ingredient_match_rate,
)
from repro.eval.tables import (
    TABLE_II_DESCRIPTIONS,
    TABLE_III_ROWS,
    render_table_i,
    render_table_ii,
    render_table_iii,
    render_table_iv,
)
from repro.eval.figures import figure_2
from repro.matching.matcher import DescriptionMatcher, MatcherConfig


@pytest.fixture(scope="module")
def corpus_results(estimator, small_corpus):
    return estimator.estimate_corpus(small_corpus)


class TestMetrics:
    def test_unique_match_rate_band(self, corpus_results):
        matched, total, rate = unique_ingredient_match_rate(corpus_results)
        assert total > 50
        assert 0.80 <= rate < 1.0

    def test_match_accuracy(self, small_corpus, corpus_results):
        report = match_accuracy(small_corpus, corpus_results, top_n=500)
        assert report.n_pairs > 0
        assert 0.0 <= report.exact_accuracy <= 1.0
        assert report.suitable_accuracy >= report.exact_accuracy

    def test_length_mismatch(self, small_corpus, corpus_results):
        with pytest.raises(ValueError):
            match_accuracy(small_corpus[:-1], corpus_results)

    def test_metric_divergence_counts(self, db):
        modified = DescriptionMatcher(db)
        vanilla = DescriptionMatcher(db, MatcherConfig(use_modified_jaccard=False))
        differing, total = metric_divergence(
            modified, vanilla,
            [("skim milk", ""), ("butter", ""), ("salt", "")])
        assert total == 3
        assert 0 <= differing <= total

    def test_calorie_error_report(self, small_corpus, corpus_results):
        pairs = select_evaluation_recipes(small_corpus, corpus_results)
        assert pairs, "no recipes passed the evaluation filter"
        report, errors = calorie_error_report(pairs)
        assert report.n_recipes == len(pairs) == len(errors)
        assert report.mean_abs_error >= 0
        assert report.median_abs_error <= report.p90_abs_error
        assert report.mean_gold_calories > 0

    def test_calorie_error_empty_raises(self):
        with pytest.raises(ValueError):
            calorie_error_report([])

    def test_gold_selection_filter(self, small_corpus, corpus_results):
        pairs = select_evaluation_recipes(small_corpus, corpus_results)
        for recipe, estimate in pairs:
            assert estimate.fraction_fully_mapped == 1.0
        with pytest.raises(ValueError):
            select_evaluation_recipes(small_corpus[:-1], corpus_results)


class TestTables:
    def test_table_i_renders(self, estimator):
        table = render_table_i(estimator)
        assert "1/2 lb lean ground beef" in table
        assert "beef" in table

    def test_table_ii_all_present(self, db):
        table = render_table_ii(db)
        assert "MISSING" not in table
        assert len(TABLE_II_DESCRIPTIONS) == 19

    def test_table_iii_renders(self, db):
        table = render_table_iii(db)
        assert "Lentils, pink or red, raw" in table
        assert len(TABLE_III_ROWS) == 10

    def test_table_iv_paper_numbers(self, db):
        table = render_table_iv(db)
        assert "227" in table   # cup grams
        assert "14.2" in table  # tbsp grams
        assert "113" in table   # stick grams
        assert "teaspoon (derived by volume)" in table


class TestFigure2:
    def test_series_and_chart(self, corpus_results):
        full, name, chart = figure_2(corpus_results)
        assert full.total == name.total == len(corpus_results)
        assert "100%" in chart
        # Name coverage dominates full coverage bucket-by-cumulative.
        assert sum(name.counts[-2:]) >= sum(full.counts[-2:])
