"""Tests for NER evaluation metrics and POS-vector clustering."""

import numpy as np
import pytest

from repro.ner.clustering import cluster_phrases, kmeans, select_diverse_corpus
from repro.ner.corpus import TaggedPhrase
from repro.ner.metrics import entity_f1, evaluate, k_fold_cross_validation


def _phrase(tokens, tags):
    return TaggedPhrase(tuple(tokens), tuple(tags))


class TestEvaluate:
    def test_perfect(self):
        gold = [_phrase(["1", "cup"], ["QUANTITY", "UNIT"])]
        report = evaluate(gold, gold)
        assert report.token_accuracy == 1.0
        assert report.entity_f1 == 1.0

    def test_all_wrong(self):
        gold = [_phrase(["salt"], ["NAME"])]
        pred = [_phrase(["salt"], ["O"])]
        report = evaluate(gold, pred)
        assert report.token_accuracy == 0.0
        assert report.entity_f1 == 0.0

    def test_partial_span_not_credited(self):
        # Entity-level: a span must match exactly.
        gold = [_phrase(["lean", "ground", "beef"], ["STATE", "STATE", "NAME"])]
        pred = [_phrase(["lean", "ground", "beef"], ["STATE", "NAME", "NAME"])]
        precision, recall, f1 = entity_f1(gold, pred)
        assert f1 == 0.0  # both spans misaligned
        report = evaluate(gold, pred)
        assert report.token_accuracy == pytest.approx(2 / 3)

    def test_per_tag_scores(self):
        gold = [_phrase(["1", "cup", "salt"], ["QUANTITY", "UNIT", "NAME"])]
        pred = [_phrase(["1", "cup", "salt"], ["QUANTITY", "UNIT", "UNIT"])]
        report = evaluate(gold, pred)
        name = report.tag_score("NAME")
        assert name.recall == 0.0 and name.support == 1
        unit = report.tag_score("UNIT")
        assert unit.precision == 0.5 and unit.recall == 1.0
        with pytest.raises(KeyError):
            report.tag_score("MISSING")

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            evaluate([_phrase(["a"], ["NAME"])], [])

    def test_token_mismatch_raises(self):
        with pytest.raises(ValueError):
            evaluate([_phrase(["a"], ["NAME"])], [_phrase(["b"], ["NAME"])])


class TestKFold:
    def test_reports_one_per_fold(self):
        phrases = [
            _phrase([f"w{i}", "cup"], ["NAME", "UNIT"]) for i in range(20)
        ]

        class Echo:
            def predict(self, tokens):
                return ["NAME", "UNIT"][: len(tokens)]

        reports = k_fold_cross_validation(phrases, lambda train: Echo(), k=5)
        assert len(reports) == 5
        assert all(r.token_accuracy == 1.0 for r in reports)

    def test_bad_k(self):
        with pytest.raises(ValueError):
            k_fold_cross_validation([], lambda t: None, k=1)
        with pytest.raises(ValueError):
            k_fold_cross_validation(
                [_phrase(["a"], ["NAME"])], lambda t: None, k=5)


class TestKMeans:
    def test_separates_obvious_clusters(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 0.1, size=(30, 2))
        b = rng.normal(5, 0.1, size=(30, 2))
        labels, centroids = kmeans(np.vstack([a, b]), k=2, seed=1)
        assert len(set(labels[:30])) == 1
        assert len(set(labels[30:])) == 1
        assert labels[0] != labels[30]

    def test_k_capped_at_n(self):
        labels, centroids = kmeans(np.zeros((3, 2)), k=10, seed=0)
        assert len(labels) == 3

    def test_deterministic(self):
        pts = np.random.default_rng(2).normal(size=(40, 3))
        l1, _ = kmeans(pts, k=4, seed=9)
        l2, _ = kmeans(pts, k=4, seed=9)
        assert np.array_equal(l1, l2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), k=0)

    def test_empty_points(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((0, 2)), k=2)


class TestDiverseSelection:
    def test_split_sizes_and_disjoint(self):
        phrases = [["1", "cup", "sugar"]] * 40 + [["salt", ",", "chopped"]] * 40
        train, test = select_diverse_corpus(phrases, 30, 10, k=4)
        assert len(train) == 30 and len(test) == 10
        assert not set(train) & set(test)

    def test_covers_clusters(self):
        numeric = [["1", "cup", "flour"]] * 50
        texty = [["salt", "to", "taste"]] * 50
        phrases = numeric + texty
        train, test = select_diverse_corpus(phrases, 40, 20, k=2)
        # Both shapes must appear in both splits.
        assert any(i < 50 for i in train) and any(i >= 50 for i in train)
        assert any(i < 50 for i in test) and any(i >= 50 for i in test)

    def test_oversized_request_rejected(self):
        with pytest.raises(ValueError):
            select_diverse_corpus([["a"]] * 5, 4, 3)

    def test_cluster_labels_shape(self):
        labels = cluster_phrases([["1", "cup"]] * 10, k=3)
        assert len(labels) == 10
