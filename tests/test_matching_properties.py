"""Property-based tests on matcher invariants."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.matching.matcher import DescriptionMatcher, MatcherConfig
from repro.recipedb.ingredients import INGREDIENTS

_NAMES = sorted({name for spec in INGREDIENTS for name in spec.names})
_STATES = ["", "chopped", "ground", "diced", "fresh", "rinsed and drained"]

names = st.sampled_from(_NAMES)
states = st.sampled_from(_STATES)


@pytest.fixture(scope="module")
def matchers(db):
    return {
        "modified": DescriptionMatcher(db),
        "vanilla": DescriptionMatcher(db, MatcherConfig(use_modified_jaccard=False)),
    }


class TestMatcherInvariants:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(name=names, state=states)
    def test_scores_bounded(self, matchers, name, state):
        for matcher in matchers.values():
            result = matcher.match(name, state)
            if result is not None:
                assert 0.0 < result.score <= 1.0

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(name=names, state=states)
    def test_winner_heads_top_matches(self, matchers, name, state):
        matcher = matchers["modified"]
        winner = matcher.match(name, state)
        top = matcher.top_matches(name, state, k=3)
        if winner is None:
            assert top == []
        else:
            assert top[0].food.ndb_no == winner.food.ndb_no

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(name=names, state=states)
    def test_modified_score_at_least_vanilla(self, matchers, name, state):
        # J* >= J pointwise, so the winning modified score dominates
        # the winning vanilla score.
        a = matchers["modified"].match(name, state)
        b = matchers["vanilla"].match(name, state)
        if a is not None and b is not None:
            assert a.score >= b.score - 1e-12

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(name=names)
    def test_match_deterministic(self, matchers, name):
        matcher = matchers["modified"]
        first = matcher.match(name)
        second = matcher.match(name)
        if first is not None:
            assert second.food.ndb_no == first.food.ndb_no

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(name=names)
    def test_matched_words_subset_of_query(self, matchers, name):
        result = matchers["modified"].match(name)
        if result is not None:
            assert result.matched_words <= result.query_words

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(name=names, state=states)
    def test_state_never_creates_match_alone(self, matchers, name, state):
        # Adding a state can change which food wins but never converts
        # an unmatched name into a match via state words only.
        matcher = matchers["modified"]
        bare = matcher.match(name)
        with_state = matcher.match(name, state)
        if bare is None and state:
            assert with_state is None
