"""Tests for repro.text.lemmatizer."""

import pytest
from hypothesis import given, strategies as st

from repro.text.lemmatizer import (
    WordNetStyleLemmatizer,
    default_lemmatizer,
    lemmatize,
)


class TestNounLemmas:
    @pytest.mark.parametrize("plural,singular", [
        ("apples", "apple"),
        ("berries", "berry"),
        ("cherries", "cherry"),
        ("tomatoes", "tomato"),
        ("potatoes", "potato"),
        ("leaves", "leaf"),
        ("loaves", "loaf"),
        ("halves", "half"),
        ("knives", "knife"),
        ("cups", "cup"),
        ("teaspoons", "teaspoon"),
        ("pinches", "pinch"),
        ("dashes", "dash"),
        ("boxes", "box"),
        ("eggs", "egg"),
        ("lentils", "lentil"),
        ("shakes", "shake"),
        ("onions", "onion"),
    ])
    def test_plural_to_singular(self, plural, singular):
        assert lemmatize(plural) == singular

    @pytest.mark.parametrize("word", [
        "molasses", "couscous", "hummus", "asparagus", "swiss", "citrus",
        "watercress", "grits",
    ])
    def test_uninflected_pass_through(self, word):
        assert lemmatize(word) == word

    def test_singular_unchanged(self):
        assert lemmatize("butter") == "butter"
        assert lemmatize("milk") == "milk"

    def test_case_insensitive(self):
        assert lemmatize("Apples") == "apple"

    def test_short_tokens_unchanged(self):
        assert lemmatize("is") == "is"
        assert lemmatize("g") == "g"

    def test_ss_endings_unchanged(self):
        assert lemmatize("glass") == "glass"


class TestVerbLemmas:
    @pytest.mark.parametrize("form,lemma", [
        ("chopped", "chop"),
        ("diced", "dice"),
        ("minced", "mince"),
        ("ground", "grind"),
        ("frozen", "freeze"),
        ("beaten", "beat"),
        ("shredded", "shred"),
        ("dried", "dry"),
        ("salted", "salt"),
    ])
    def test_participles(self, form, lemma):
        assert lemmatize(form, pos="v") == lemma

    def test_chopping_gerund(self):
        assert lemmatize("chopping", pos="v") == "chop"


class TestAPI:
    def test_unknown_pos_raises(self):
        with pytest.raises(ValueError):
            lemmatize("apples", pos="adj")

    def test_vocabulary_extension_validates_candidates(self):
        lem = WordNetStyleLemmatizer({"quinces"})
        lem.add_vocabulary({"quince"})
        assert lem.lemmatize("quinces") == "quince"

    def test_default_is_shared(self):
        assert default_lemmatizer() is default_lemmatizer()

    def test_callable(self):
        assert default_lemmatizer()("apples") == "apple"

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1,
                   max_size=15))
    def test_idempotent_on_own_output(self, word):
        lem = default_lemmatizer()
        once = lem.lemmatize(word)
        assert lem.lemmatize(once) == once

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=3,
                   max_size=15))
    def test_lemma_never_longer(self, word):
        assert len(lemmatize(word)) <= len(word) + 1  # ves -> f+e edge


class TestNounGuardRegression:
    """The pass-through guard's intent, made explicit (PR 1).

    The seed guard mixed ``or``/``and`` so a vocabulary word not ending
    in "s" entered the block and silently fell through; these tests pin
    the intended semantics for every path through the guard.
    """

    def test_vocab_word_ending_in_s_still_lemmatizes(self):
        # Description vocabularies contain plural surface forms
        # ("apples" occurs verbatim in USDA text); being in the vocab
        # must not exempt an s-form from the detachment rules.
        lem = WordNetStyleLemmatizer({"berries", "berry"})
        assert lem.lemmatize("berries") == "berry"

    def test_vocab_word_ending_in_s_without_known_lemma(self):
        # Rules still apply; the conservative fallback strips the "s".
        lem = WordNetStyleLemmatizer({"brussels"})
        assert lem.lemmatize("brussels") == "brussel"

    def test_vocab_word_not_ending_in_s_passes_through(self):
        lem = WordNetStyleLemmatizer({"hollandaise"})
        assert lem.lemmatize("hollandaise") == "hollandaise"

    def test_exceptions_beat_vocabulary_guard(self):
        # "leaves" may be in the vocabulary verbatim, but the irregular
        # plural must still win.
        lem = WordNetStyleLemmatizer({"leaves"})
        assert lem.lemmatize("leaves") == "leaf"

    def test_uninflected_vocab_word_ending_in_s(self):
        lem = WordNetStyleLemmatizer({"molasses"})
        assert lem.lemmatize("molasses") == "molasses"
