"""Tests for the Book-of-Yields conversion tables."""

import pytest
from hypothesis import given, strategies as st

from repro.units.conversions import (
    MASS_GRAMS,
    VOLUME_ML,
    convert,
    is_mass_unit,
    is_volume_unit,
    mass_grams,
    volume_ratio,
)


class TestTables:
    def test_paper_equivalences(self):
        # "'1 cup' is equivalent to '16 tbsp' and '48 tsp' and so on"
        assert volume_ratio("cup", "tablespoon") == pytest.approx(16.0, rel=1e-3)
        assert volume_ratio("cup", "teaspoon") == pytest.approx(48.0, rel=1e-3)
        assert volume_ratio("tablespoon", "teaspoon") == pytest.approx(3.0, rel=1e-3)
        assert volume_ratio("gallon", "quart") == pytest.approx(4.0, rel=1e-3)
        assert volume_ratio("quart", "pint") == pytest.approx(2.0, rel=1e-3)
        assert volume_ratio("cup", "fluid ounce") == pytest.approx(8.0, rel=1e-3)

    def test_mass_equivalences(self):
        assert mass_grams("pound") / mass_grams("ounce") == pytest.approx(16.0)
        assert mass_grams("kilogram") == 1000.0

    def test_kind_predicates_disjoint(self):
        assert not (set(VOLUME_ML) & set(MASS_GRAMS))
        assert is_volume_unit("cup") and not is_mass_unit("cup")
        assert is_mass_unit("gram") and not is_volume_unit("gram")


class TestConvert:
    def test_volume(self):
        assert convert(2.0, "cup", "tablespoon") == pytest.approx(32.0, rel=1e-3)

    def test_mass(self):
        assert convert(2.0, "pound", "ounce") == pytest.approx(32.0)

    def test_cross_kind_raises(self):
        with pytest.raises(ValueError):
            convert(1.0, "cup", "gram")

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            convert(1.0, "cup", "sprig")

    @given(st.sampled_from(sorted(VOLUME_ML)), st.sampled_from(sorted(VOLUME_ML)),
           st.floats(min_value=0.01, max_value=100, allow_nan=False))
    def test_round_trip(self, a, b, amount):
        there = convert(amount, a, b)
        back = convert(there, b, a)
        assert back == pytest.approx(amount, rel=1e-9)

    @given(st.sampled_from(sorted(VOLUME_ML)), st.sampled_from(sorted(VOLUME_ML)),
           st.sampled_from(sorted(VOLUME_ML)))
    def test_transitivity(self, a, b, c):
        direct = volume_ratio(a, c)
        via = volume_ratio(a, b) * volume_ratio(b, c)
        assert via == pytest.approx(direct, rel=1e-9)
