"""Tests for Figure-2 coverage histograms."""

import pytest
from hypothesis import given, strategies as st

from repro.core.coverage import (
    BUCKETS,
    CoverageHistogram,
    _bucket_index,
    coverage_histogram,
)
from repro.core.estimator import (
    IngredientEstimate,
    ParsedIngredient,
    RecipeEstimate,
    STATUS_FULL,
    STATUS_NAME_ONLY,
    STATUS_UNMATCHED,
)
from repro.core.profile import NutritionalProfile


def _estimate(statuses):
    parsed = ParsedIngredient("x", ("x",), ("NAME",), "x", "", "", "", "", "", "")
    ingredients = tuple(
        IngredientEstimate(parsed=parsed, status=s) for s in statuses
    )
    zero = NutritionalProfile.zero()
    return RecipeEstimate(ingredients=ingredients, servings=1,
                          total=zero, per_serving=zero)


class TestBucketIndex:
    def test_exact_hundred_separate(self):
        assert _bucket_index(100.0) == len(BUCKETS) - 1
        assert _bucket_index(99.9) == len(BUCKETS) - 2

    def test_zero(self):
        assert _bucket_index(0.0) == 0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            _bucket_index(-1.0)
        with pytest.raises(ValueError):
            _bucket_index(101.0)

    @given(st.floats(min_value=0, max_value=100, allow_nan=False))
    def test_always_valid(self, percent):
        assert 0 <= _bucket_index(percent) < len(BUCKETS)


class TestHistogram:
    def test_counts(self):
        estimates = [
            _estimate([STATUS_FULL] * 4),                      # 100%
            _estimate([STATUS_FULL] * 3 + [STATUS_NAME_ONLY]), # 75%
            _estimate([STATUS_UNMATCHED] * 2),                 # 0%
        ]
        hist = coverage_histogram(estimates, "full")
        assert hist.total == 3
        assert hist.counts[-1] == 1   # the 100% bucket
        assert hist.counts[7] == 1    # 70-80%
        assert hist.counts[0] == 1    # 0-10%

    def test_name_level(self):
        estimates = [_estimate([STATUS_NAME_ONLY] * 2)]
        full = coverage_histogram(estimates, "full")
        name = coverage_histogram(estimates, "name")
        assert full.counts[0] == 1      # 0% fully mapped
        assert name.counts[-1] == 1     # 100% name mapped

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            coverage_histogram([], "bogus")

    def test_fractions_sum_to_one(self):
        estimates = [_estimate([STATUS_FULL])] * 5
        hist = coverage_histogram(estimates, "full")
        assert sum(hist.fractions()) == pytest.approx(1.0)

    def test_empty(self):
        hist = coverage_histogram([], "full")
        assert hist.total == 0
        assert sum(hist.fractions()) == 0.0

    def test_labels(self):
        hist = coverage_histogram([], "full")
        labels = hist.labels()
        assert labels[0] == "0-10%"
        assert labels[-1] == "100%"

    def test_ascii_chart(self):
        estimates = [_estimate([STATUS_FULL])] * 3
        chart = coverage_histogram(estimates, "full").ascii_chart(width=10)
        assert "100%" in chart and "#" in chart

    def test_wrong_bucket_count_rejected(self):
        with pytest.raises(ValueError):
            CoverageHistogram(counts=(1, 2), total=3)
