"""Tests for Figure-2 coverage histograms."""

import pytest
from hypothesis import given, strategies as st

from repro.core.coverage import (
    BUCKETS,
    CoverageHistogram,
    _bucket_index,
    coverage_histogram,
    reason_breakdown,
    reason_breakdown_from_lines,
)
from repro.core.estimator import (
    IngredientEstimate,
    ParsedIngredient,
    RecipeEstimate,
    STATUS_FULL,
    STATUS_NAME_ONLY,
    STATUS_UNMATCHED,
)
from repro.core.profile import NutritionalProfile


def _estimate(statuses):
    parsed = ParsedIngredient("x", ("x",), ("NAME",), "x", "", "", "", "", "", "")
    ingredients = tuple(
        IngredientEstimate(parsed=parsed, status=s) for s in statuses
    )
    zero = NutritionalProfile.zero()
    return RecipeEstimate(ingredients=ingredients, servings=1,
                          total=zero, per_serving=zero)


def _line(status, reason, trace):
    parsed = ParsedIngredient("x", ("x",), ("NAME",), "x", "", "", "", "", "", "")
    return IngredientEstimate(
        parsed=parsed, status=status, reason=reason, trace=trace
    )


class TestBucketIndex:
    def test_exact_hundred_separate(self):
        assert _bucket_index(100.0) == len(BUCKETS) - 1
        assert _bucket_index(99.9) == len(BUCKETS) - 2

    def test_zero(self):
        assert _bucket_index(0.0) == 0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            _bucket_index(-1.0)
        with pytest.raises(ValueError):
            _bucket_index(101.0)

    @given(st.floats(min_value=0, max_value=100, allow_nan=False))
    def test_always_valid(self, percent):
        assert 0 <= _bucket_index(percent) < len(BUCKETS)


class TestHistogram:
    def test_counts(self):
        estimates = [
            _estimate([STATUS_FULL] * 4),                      # 100%
            _estimate([STATUS_FULL] * 3 + [STATUS_NAME_ONLY]), # 75%
            _estimate([STATUS_UNMATCHED] * 2),                 # 0%
        ]
        hist = coverage_histogram(estimates, "full")
        assert hist.total == 3
        assert hist.counts[-1] == 1   # the 100% bucket
        assert hist.counts[7] == 1    # 70-80%
        assert hist.counts[0] == 1    # 0-10%

    def test_name_level(self):
        estimates = [_estimate([STATUS_NAME_ONLY] * 2)]
        full = coverage_histogram(estimates, "full")
        name = coverage_histogram(estimates, "name")
        assert full.counts[0] == 1      # 0% fully mapped
        assert name.counts[-1] == 1     # 100% name mapped

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            coverage_histogram([], "bogus")

    def test_fractions_sum_to_one(self):
        estimates = [_estimate([STATUS_FULL])] * 5
        hist = coverage_histogram(estimates, "full")
        assert sum(hist.fractions()) == pytest.approx(1.0)

    def test_empty(self):
        hist = coverage_histogram([], "full")
        assert hist.total == 0
        assert sum(hist.fractions()) == 0.0

    def test_labels(self):
        hist = coverage_histogram([], "full")
        labels = hist.labels()
        assert labels[0] == "0-10%"
        assert labels[-1] == "100%"

    def test_ascii_chart(self):
        estimates = [_estimate([STATUS_FULL])] * 3
        chart = coverage_histogram(estimates, "full").ascii_chart(width=10)
        assert "100%" in chart and "#" in chart

    def test_wrong_bucket_count_rejected(self):
        with pytest.raises(ValueError):
            CoverageHistogram(counts=(1, 2), total=3)


class TestReasonBreakdown:
    def test_counts_by_reason_and_primary_failure(self):
        lines = [
            (_line(STATUS_FULL, "ner-unit", ("ner-unit:resolved",)), 3),
            (_line(STATUS_FULL, "bare-count",
                   ("phrase-scan:no-unit", "bare-count:resolved")), 2),
            (_line(STATUS_NAME_ONLY, "corpus-frequent-unit",
                   ("ner-unit:unresolvable",
                    "corpus-frequent-unit:never-observed")), 4),
            (_line(STATUS_UNMATCHED, "no-description-match",
                   ("no-description-match",)), 1),
        ]
        breakdown = reason_breakdown_from_lines(lines)
        assert breakdown.total_lines == 10
        assert breakdown.name_mapped == 9
        assert breakdown.fully_mapped == 5
        assert breakdown.unit_gap == 4
        assert breakdown.resolved_by == {"ner-unit": 3, "bare-count": 2}
        # name-only lines attribute to the *first* failing event
        assert breakdown.failed_by == {"ner-unit:unresolvable": 4}
        assert breakdown.unmatched_by == {"no-description-match": 1}
        assert breakdown.events["phrase-scan:no-unit"] == 2
        assert breakdown.events["corpus-frequent-unit:never-observed"] == 4

    def test_incremental_tally_equals_batch_breakdown(self):
        from repro.core.coverage import ReasonTally

        full = _line(STATUS_FULL, "ner-unit", ("ner-unit:resolved",))
        name_only = _line(STATUS_NAME_ONLY, "corpus-frequent-unit",
                          ("ner-unit:unresolvable",
                           "corpus-frequent-unit:never-observed"))
        zero = NutritionalProfile.zero()
        recipes = [
            RecipeEstimate(ingredients=(full, name_only), servings=1,
                           total=zero, per_serving=zero),
            RecipeEstimate(ingredients=(full,), servings=2,
                           total=zero, per_serving=zero),
        ]
        tally = ReasonTally()
        for recipe in recipes:
            tally.add_recipe(recipe)
        assert tally.breakdown() == reason_breakdown(recipes)
        # snapshot semantics: folding more keeps counting
        tally.add(full)
        assert tally.breakdown().fully_mapped == 3

    def test_recipe_level_equals_weighted_lines(self):
        full = _line(STATUS_FULL, "ner-unit", ("ner-unit:resolved",))
        zero = NutritionalProfile.zero()
        recipe = RecipeEstimate(
            ingredients=(full, full), servings=1, total=zero, per_serving=zero
        )
        assert reason_breakdown([recipe, recipe]) == (
            reason_breakdown_from_lines([(full, 4)])
        )

    def test_render_names_the_figure_2_gap(self):
        breakdown = reason_breakdown_from_lines([
            (_line(STATUS_FULL, "ner-unit", ("ner-unit:resolved",)), 8),
            (_line(STATUS_NAME_ONLY, "corpus-frequent-unit",
                   ("ner-unit:unresolvable",
                    "corpus-frequent-unit:never-observed")), 2),
        ])
        text = breakdown.render()
        assert "unit gap (Figure 2" in text
        assert "ner-unit:unresolvable" in text
        assert "resolved by:" in text

    def test_empty(self):
        breakdown = reason_breakdown([])
        assert breakdown.total_lines == 0
        assert breakdown.unit_gap == 0
        assert "lines: 0" in breakdown.render()

    def test_breakdown_over_generated_corpus_matches_figure_2(self):
        """The breakdown's aggregates must reproduce the Figure-2
        series: name/full mapped counts equal the status tallies."""
        from repro import NutritionEstimator, RecipeGenerator
        from repro.recipedb.generator import GeneratorConfig

        recipes = RecipeGenerator(config=GeneratorConfig(seed=4)).generate(40)
        estimates = NutritionEstimator().estimate_corpus(recipes)
        breakdown = reason_breakdown(estimates)
        flat = [i for e in estimates for i in e.ingredients]
        assert breakdown.total_lines == len(flat)
        assert breakdown.fully_mapped == sum(
            1 for i in flat if i.status == STATUS_FULL
        )
        assert breakdown.name_mapped == sum(
            1 for i in flat if i.status != STATUS_UNMATCHED
        )
        assert sum(breakdown.resolved_by.values()) == breakdown.fully_mapped
        assert sum(breakdown.failed_by.values()) == breakdown.unit_gap
