"""Tests for the end-to-end NutritionEstimator."""

import pytest

from repro.core.estimator import (
    NutritionEstimator,
    STATUS_FULL,
    STATUS_NAME_ONLY,
    STATUS_UNMATCHED,
)
from repro.recipedb.phrases import PIROSZHKI_PHRASES


class TestParse:
    @pytest.mark.parametrize("phrase,name,quantity,unit", [
        ("1/2 lb lean ground beef", "beef", "1/2", "lb"),
        ("1 small onion , finely chopped", "onion", "1", ""),
        ("1 tablespoon fresh dill weed", "dill weed", "1", "tablespoon"),
        ("2 cups all-purpose flour", "all-purpose flour", "2", "cups"),
        ("1 egg yolk", "egg yolk", "1", ""),
    ])
    def test_table_i_fields(self, estimator, phrase, name, quantity, unit):
        parsed = estimator.parse(phrase)
        assert parsed.name == name
        assert parsed.quantity == quantity
        assert parsed.unit == unit

    def test_alternative_keeps_first(self, estimator):
        parsed = estimator.parse("3/4 cup butter or 3/4 cup margarine , softened")
        assert parsed.name == "butter"
        assert parsed.quantity == "3/4"
        assert parsed.unit == "cup"
        assert parsed.state == "softened"

    def test_state_joined_across_segments(self, estimator):
        parsed = estimator.parse("1 hard-cooked egg , finely chopped")
        assert parsed.state == "hard-cooked chopped"

    def test_temp_extracted(self, estimator):
        parsed = estimator.parse("1 tablespoon cold water")
        assert parsed.temperature == "cold"
        assert parsed.name == "water"

    def test_size_extracted(self, estimator):
        assert estimator.parse("1 small onion").size == "small"

    def test_range_quantity_joined(self, estimator):
        parsed = estimator.parse("2 - 4 carrots , sliced")
        assert parsed.quantity == "2-4"

    def test_of_interrupted_name(self, estimator):
        parsed = estimator.parse("2 cans cream of mushroom soup")
        assert parsed.name == "cream mushroom soup"

    # ------------------------------------------------------------------
    # segmentation edge cases (ISSUE 5 satellite): alternatives,
    # packaging parentheticals, O-interrupted names, nameless phrases.

    def test_plus_alternative_keeps_first_segment(self, estimator):
        parsed = estimator.parse("1 cup flour plus 2 tablespoons flour")
        assert parsed.name == "flour"
        assert parsed.quantity == "1"
        assert parsed.unit == "cup"

    def test_or_alternative_without_name_in_first_segment(self, estimator):
        # The first segment ("to taste") carries no NAME; the primary
        # segment is the first one that does.
        parsed = estimator.parse("to taste or 1 teaspoon salt")
        assert parsed.name == "salt"
        assert parsed.quantity == "1"
        assert parsed.unit == "teaspoon"

    def test_packaging_parenthetical_keeps_outer_measure(self, estimator):
        # "(15 ounce)" must not smuggle a second quantity/unit into the
        # parse: QUANTITY and UNIT take the first contiguous run.
        parsed = estimator.parse("1 (15 ounce) can black beans")
        assert parsed.name == "black beans"
        assert parsed.quantity == "1"
        assert parsed.unit == "can"

    def test_o_interrupted_name_spans_the_gap(self, estimator):
        parsed = estimator.parse("1 can cream of mushroom soup")
        assert parsed.name == "cream mushroom soup"
        assert parsed.unit == "can"
        assert parsed.quantity == "1"

    def test_no_segment_carries_a_name(self, estimator):
        # No NAME anywhere: the primary segment falls back to the whole
        # phrase, entities still extract, and estimation reports the
        # no-name reason.
        parsed = estimator.parse("2 cups")
        assert parsed.name == ""
        assert parsed.quantity == "2"
        assert parsed.unit == "cups"
        est = estimator.estimate_ingredient("2 cups")
        assert est.status == STATUS_UNMATCHED
        assert est.reason == "no-name"

    def test_all_o_phrase(self, estimator):
        parsed = estimator.parse("to taste")
        assert parsed.name == "" and parsed.unit == "" and parsed.quantity == ""
        assert estimator.estimate_ingredient("to taste").reason == "no-name"


class TestEstimateIngredient:
    def test_full_pipeline(self, estimator):
        est = estimator.estimate_ingredient("2 cups all-purpose flour")
        assert est.status == STATUS_FULL
        assert est.match.food.ndb_no == "20081"
        assert est.grams == pytest.approx(250.0)
        assert est.calories == pytest.approx(910.0, rel=1e-3)

    def test_unmatched_ingredient(self, estimator):
        est = estimator.estimate_ingredient("2 teaspoons garam masala")
        assert est.status == STATUS_UNMATCHED
        assert est.calories == 0.0

    def test_derived_teaspoon_of_butter(self, estimator):
        est = estimator.estimate_ingredient("1 teaspoon butter")
        assert est.status == STATUS_FULL
        assert est.resolution.method == "volume-derived"
        # §III: 1 tsp butter ≈ 35 kcal.
        assert est.calories == pytest.approx(34.0, abs=5.0)

    def test_bare_count(self, estimator):
        est = estimator.estimate_ingredient("2 eggs")
        assert est.status == STATUS_FULL
        assert est.grams == pytest.approx(100.0)

    def test_range_quantity_averaged(self, estimator):
        est = estimator.estimate_ingredient("2 - 4 medium carrots")
        assert est.quantity == 3.0

    def test_missing_quantity_defaults_to_one(self, estimator):
        est = estimator.estimate_ingredient("salt to taste")
        assert est.quantity == 1.0

    def test_alias_unit(self, estimator):
        a = estimator.estimate_ingredient("2 tbsp sugar")
        b = estimator.estimate_ingredient("2 tablespoons sugar")
        assert a.grams == pytest.approx(b.grams)

    def test_scan_rescues_missing_unit(self):
        # A tagger that never emits UNIT forces the phrase scan.
        class NoUnitTagger:
            def predict(self, tokens):
                tags = []
                for t in tokens:
                    if t[0].isdigit():
                        tags.append("QUANTITY")
                    elif t.isalpha():
                        tags.append("NAME")
                    else:
                        tags.append("O")
                return tags

        estimator = NutritionEstimator(tagger=NoUnitTagger())
        est = estimator.estimate_ingredient("2 cups sugar")
        # "cups" was tagged NAME, but the matcher still finds sugar and
        # the name includes a scannable unit.
        assert est.status in (STATUS_FULL, STATUS_NAME_ONLY)

    def test_plausibility_threshold(self, estimator):
        # "500 cups water" is implausible (>118 kg); the scan finds the
        # same cup, so resolution fails through to fallback/None.
        est = estimator.estimate_ingredient("500 cups water")
        assert est.grams <= estimator.fallback._max_grams or est.status != STATUS_FULL


class TestEstimateRecipe:
    def test_piroszhki_end_to_end(self, estimator):
        recipe = estimator.estimate_recipe(list(PIROSZHKI_PHRASES), servings=6)
        assert recipe.fraction_fully_mapped == 1.0
        assert recipe.fraction_name_mapped == 1.0
        # Pastry dough + beef filling lands in plausible range.
        assert 300 <= recipe.per_serving.calories <= 800
        total = sum(i.calories for i in recipe.ingredients)
        assert recipe.total.calories == pytest.approx(total)
        assert recipe.per_serving.calories == pytest.approx(total / 6)

    def test_bad_servings(self, estimator):
        with pytest.raises(ValueError):
            estimator.estimate_recipe(["1 cup sugar"], servings=0)

    def test_empty_recipe(self, estimator):
        recipe = estimator.estimate_recipe([], servings=2)
        assert recipe.total.calories == 0.0
        assert recipe.fraction_fully_mapped == 0.0

    def test_corpus_two_pass_fallback(self, generator):
        estimator = NutritionEstimator()
        recipes = generator.generate(30)
        results = estimator.estimate_corpus(recipes, passes=2)
        assert len(results) == 30
        with pytest.raises(ValueError):
            estimator.estimate_corpus(recipes, passes=0)


class TestBatchEstimation:
    def test_estimate_recipes_matches_per_recipe_path(self, generator):
        recipes = generator.generate(12)
        batch = NutritionEstimator().estimate_recipes(recipes)
        single = NutritionEstimator()
        expected = [single.estimate_recipe(r.ingredient_texts, r.servings)
                    for r in recipes]
        assert [b.per_serving for b in batch] == \
               [e.per_serving for e in expected]
        assert [b.total for b in batch] == [e.total for e in expected]

    def test_estimate_corpus_single_pass_delegates_to_batch(self, generator):
        recipes = generator.generate(10)
        a = NutritionEstimator().estimate_corpus(recipes, passes=1)
        b = NutritionEstimator().estimate_recipes(recipes, passes=1)
        assert a == b

    def test_estimate_corpus_matches_explicit_two_phase_protocol(
        self, generator
    ):
        """estimate_corpus == collect / merge / re-estimate / assemble
        spelled out by hand through the public phase methods."""
        recipes = generator.generate(25)
        result = NutritionEstimator().estimate_corpus(recipes, passes=2)

        reference = NutritionEstimator()
        counts: dict[str, int] = {}
        for recipe in recipes:
            for text in recipe.ingredient_texts:
                counts[text] = counts.get(text, 0) + 1
        estimates, observations = reference.corpus_collect_estimates(
            counts.items()
        )
        reference.fallback.clear()
        reference.fallback.merge(observations)
        pending = [
            text for text, est in estimates.items()
            if est.status == STATUS_NAME_ONLY
        ]
        estimates.update(reference.corpus_fallback_estimates(pending))
        expected = [
            reference.finish_recipe(
                [estimates[t] for t in r.ingredient_texts], r.servings
            )
            for r in recipes
        ]
        assert result == expected

    def test_estimate_corpus_is_order_independent(self, generator):
        """The two-phase protocol's defining property: shuffling the
        corpus permutes the results but never changes them."""
        import random

        recipes = generator.generate(40)
        shuffled = list(recipes)
        random.Random(9).shuffle(shuffled)
        by_id = {
            r.recipe_id: e
            for r, e in zip(
                recipes, NutritionEstimator().estimate_corpus(recipes)
            )
        }
        for recipe, estimate in zip(
            shuffled, NutritionEstimator().estimate_corpus(shuffled)
        ):
            assert estimate == by_id[recipe.recipe_id]

    def test_estimate_recipes_validates_passes(self, generator):
        recipes = generator.generate(2)
        with pytest.raises(ValueError):
            NutritionEstimator().estimate_recipes(recipes, passes=0)

    def test_parse_cache_returns_equal_results(self):
        estimator = NutritionEstimator()
        first = estimator.estimate_ingredient("2 cups white sugar")
        second = estimator.estimate_ingredient("2 cups white sugar")
        assert first.parsed is second.parsed  # memoized parse
        assert first.profile == second.profile
