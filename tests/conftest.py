"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import NutritionEstimator, RecipeGenerator, load_default_database
from repro.matching.matcher import DescriptionMatcher


@pytest.fixture(scope="session")
def db():
    return load_default_database()


@pytest.fixture(scope="session")
def matcher(db):
    return DescriptionMatcher(db)


@pytest.fixture(scope="session")
def estimator():
    return NutritionEstimator()


@pytest.fixture(scope="session")
def generator():
    return RecipeGenerator()


@pytest.fixture(scope="session")
def small_corpus(generator):
    return generator.generate(60)
