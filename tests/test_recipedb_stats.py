"""Tests for corpus statistics."""

import pytest

from repro.recipedb.stats import corpus_stats, render_stats


class TestCorpusStats:
    def test_basic_counts(self, small_corpus):
        stats = corpus_stats(small_corpus)
        assert stats.n_recipes == len(small_corpus)
        assert stats.n_ingredient_lines == sum(
            len(r.ingredients) for r in small_corpus)
        assert 4 <= stats.mean_ingredients_per_recipe <= 12
        assert stats.mean_tokens_per_phrase > 2

    def test_ingredient_frequency_sorted(self, small_corpus):
        stats = corpus_stats(small_corpus)
        counts = [count for _, count in stats.ingredient_frequency]
        assert counts == sorted(counts, reverse=True)
        assert sum(counts) == stats.n_ingredient_lines

    def test_staples_dominate(self, small_corpus):
        stats = corpus_stats(small_corpus)
        top_keys = {key for key, _ in stats.top_ingredients(15)}
        # Staples are in every cuisine pool, so some must rank high.
        assert top_keys & {"salt", "black_pepper", "olive_oil", "butter",
                           "water", "onion", "garlic", "egg", "flour",
                           "sugar", "vegetable_oil"}

    def test_unmappable_fraction_band(self, small_corpus):
        stats = corpus_stats(small_corpus)
        assert 0.0 <= stats.unmappable_line_fraction < 0.2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            corpus_stats([])

    def test_render(self, small_corpus):
        text = render_stats(corpus_stats(small_corpus))
        assert "recipes:" in text and "top 15 ingredients:" in text
