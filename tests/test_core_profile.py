"""Tests for nutritional profile arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.core.profile import NutritionalProfile
from repro.usda.nutrients import NUTRIENT_KEYS
from repro.usda.schema import FoodItem

amounts = st.dictionaries(
    st.sampled_from(NUTRIENT_KEYS),
    st.floats(min_value=0, max_value=1000, allow_nan=False),
    max_size=6,
)


def profile_strategy():
    return amounts.map(NutritionalProfile)


class TestBasics:
    def test_zero(self):
        assert NutritionalProfile.zero().calories == 0.0

    def test_from_food(self):
        food = FoodItem("1", "X", "G", nutrients={"energy_kcal": 717.0})
        profile = NutritionalProfile.from_food(food, 14.2)
        assert profile.calories == pytest.approx(101.8, rel=1e-3)

    def test_from_food_negative_grams(self):
        food = FoodItem("1", "X", "G")
        with pytest.raises(ValueError):
            NutritionalProfile.from_food(food, -1.0)

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            NutritionalProfile({"bogus": 1.0})
        with pytest.raises(KeyError):
            NutritionalProfile.zero().get("bogus")

    def test_per_serving(self):
        profile = NutritionalProfile({"energy_kcal": 600.0})
        assert profile.per_serving(6).calories == 100.0
        with pytest.raises(ValueError):
            profile.per_serving(0)

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            NutritionalProfile.zero().scaled(-1.0)

    def test_rounded_canonical_order(self):
        profile = NutritionalProfile({"energy_kcal": 1.2345})
        rounded = profile.rounded()
        assert list(rounded) == list(NUTRIENT_KEYS)
        assert rounded["energy_kcal"] == 1.23


class TestAlgebra:
    @given(profile_strategy(), profile_strategy())
    def test_addition_commutative(self, a, b):
        assert (a + b).rounded(6) == (b + a).rounded(6)

    @given(profile_strategy(), profile_strategy(), profile_strategy())
    def test_addition_associative(self, a, b, c):
        left = ((a + b) + c).rounded(4)
        right = (a + (b + c)).rounded(4)
        assert left == pytest.approx(right)

    @given(profile_strategy())
    def test_zero_identity(self, a):
        assert (a + NutritionalProfile.zero()).rounded(6) == a.rounded(6)

    @given(profile_strategy(),
           st.floats(min_value=0, max_value=10, allow_nan=False))
    def test_scaling_linear(self, a, factor):
        scaled = a.scaled(factor)
        for key in NUTRIENT_KEYS:
            assert scaled.get(key) == pytest.approx(a.get(key) * factor)

    @given(profile_strategy(), st.integers(min_value=1, max_value=12))
    def test_per_serving_sums_back(self, a, servings):
        per = a.per_serving(servings)
        assert per.scaled(servings).calories == pytest.approx(a.calories)
