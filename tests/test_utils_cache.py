"""Tests for the size-capped memo cache."""

import pytest

from repro.core.estimator import NutritionEstimator
from repro.utils import BoundedCache


class TestBoundedCache:
    def test_acts_like_a_dict_under_cap(self):
        cache = BoundedCache(cap=3)
        cache["a"] = 1
        cache["b"] = 2
        assert cache["a"] == 1
        assert cache.get("missing") is None
        assert len(cache) == 2

    def test_evicts_oldest_at_cap(self):
        cache = BoundedCache(cap=3)
        for key in "abcd":
            cache[key] = key.upper()
        assert len(cache) == 3
        assert "a" not in cache
        assert list(cache) == ["b", "c", "d"]

    def test_overwrite_does_not_evict(self):
        cache = BoundedCache(cap=2)
        cache["a"] = 1
        cache["b"] = 2
        cache["a"] = 3  # update in place, no eviction
        assert cache == {"a": 3, "b": 2}

    def test_rejects_non_positive_cap(self):
        with pytest.raises(ValueError):
            BoundedCache(cap=0)

    def test_stats_count_hits_misses_evictions(self):
        cache = BoundedCache(cap=2)
        assert cache.stats() == {
            "size": 0, "cap": 2, "hits": 0, "misses": 0,
            "evictions": 0, "hit_rate": 0.0,
        }
        cache["a"] = 1
        assert cache.get("a") == 1
        assert cache.get("b") is None
        for key in "bc":
            cache[key] = key  # second insert evicts "a"
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] == 1
        assert stats["size"] == 2
        assert stats["hit_rate"] == 0.5

    def test_stats_count_cached_none_via_sentinel(self):
        """A cached None must not be counted as a miss on re-probe
        (the matcher caches unmatched results as None)."""
        sentinel = object()
        cache = BoundedCache(cap=2)
        cache["a"] = None
        assert cache.get("a", sentinel) is None
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 0


class TestCapsAreWired:
    def test_estimator_caches_respect_cap(self):
        estimator = NutritionEstimator(cache_cap=4)
        phrases = [
            "1 cup white sugar", "2 tbsp butter", "3 eggs",
            "1 teaspoon salt", "2 cups all-purpose flour",
            "1 small onion", "1/2 lb ground beef",
        ]
        for phrase in phrases:
            estimator.estimate_ingredient(phrase)
        assert len(estimator._parse_cache) <= 4
        assert len(estimator._matcher._cache) <= 4
        # Capped caching changes memory use, never results.
        first = estimator.estimate_ingredient(phrases[0])
        fresh = NutritionEstimator().estimate_ingredient(phrases[0])
        assert first.profile == fresh.profile
