"""Tests for match explanations."""

from repro.matching.explain import explain_match


class TestExplainMatch:
    def test_winner_explained(self, matcher):
        explanation = explain_match(matcher, "red lentils")
        assert explanation.winner is not None
        text = explanation.render()
        assert "Lentils, pink or red, raw" in text
        assert "word set A" in text
        assert "decided by" in text or len(explanation.candidates) <= 1

    def test_unmatched_explained(self, matcher):
        explanation = explain_match(matcher, "garam masala")
        assert explanation.winner is None
        assert "UNMATCHED" in explanation.render()

    def test_candidates_ordered_with_winner_first(self, matcher):
        explanation = explain_match(matcher, "egg", k=4)
        assert explanation.candidates[0].food.ndb_no == (
            explanation.winner.food.ndb_no)

    def test_tie_break_reason_named(self, matcher):
        # "apple": Apples-with-skin beats Babyfood via priority, and
        # beats without-skin via index — a reason must be stated.
        text = explain_match(matcher, "apple").render()
        assert "decided by:" in text

    def test_query_words_rendered(self, matcher):
        text = explain_match(matcher, "unsalted butter").render()
        assert "not" in text and "salt" in text
