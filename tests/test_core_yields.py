"""Tests for cooking-yield adjustment (the paper's [4] future work)."""

import pytest

from repro.core.profile import NutritionalProfile
from repro.core.yields import (
    STATE_TO_METHOD,
    YIELD_FACTORS,
    YieldFactor,
    apply_cooking_yield,
    infer_method,
    yield_factor,
)


class TestYieldFactor:
    def test_retention_applied(self):
        profile = NutritionalProfile({"vitamin_c_mg": 100.0, "protein_g": 10.0})
        boiled = yield_factor("boiled").apply(profile)
        assert boiled.get("vitamin_c_mg") == pytest.approx(50.0)
        assert boiled.get("protein_g") == 10.0  # unlisted -> retained

    def test_energy_mostly_conserved(self):
        profile = NutritionalProfile({"energy_kcal": 200.0})
        for method, factor in YIELD_FACTORS.items():
            cooked = factor.apply(profile)
            assert cooked.calories >= 0.9 * 200.0, method

    def test_validation(self):
        with pytest.raises(ValueError):
            YieldFactor("x", 0.0)
        with pytest.raises(ValueError):
            YieldFactor("x", 1.0, {"bogus": 0.5})
        with pytest.raises(ValueError):
            YieldFactor("x", 1.0, {"energy_kcal": 1.5})

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            yield_factor("sous-vide")

    def test_raw_is_identity(self):
        profile = NutritionalProfile({"energy_kcal": 123.0, "iron_mg": 2.0})
        assert yield_factor("raw").apply(profile).rounded() == profile.rounded()


class TestInference:
    def test_state_words(self):
        assert infer_method("roasted and chopped") == "roasted"
        assert infer_method("hard-boiled") == "boiled"
        assert infer_method("finely chopped") is None
        assert infer_method("") is None

    def test_all_mapped_methods_exist(self):
        for method in STATE_TO_METHOD.values():
            assert method in YIELD_FACTORS

    def test_apply_cooking_yield(self):
        profile = NutritionalProfile({"vitamin_c_mg": 40.0})
        adjusted, method = apply_cooking_yield(profile, "boiled , drained")
        assert method == "boiled"
        assert adjusted.get("vitamin_c_mg") == pytest.approx(20.0)

    def test_apply_without_method_is_identity(self):
        profile = NutritionalProfile({"energy_kcal": 90.0})
        adjusted, method = apply_cooking_yield(profile, "diced")
        assert method is None
        assert adjusted is profile
