"""Tests for per-food unit resolution."""

import pytest

from repro.units.gram_weights import (
    METHOD_COUNT,
    METHOD_EXACT,
    METHOD_MASS,
    METHOD_SIZE,
    METHOD_VOLUME,
    UnitResolver,
)


@pytest.fixture(scope="module")
def butter_resolver(db):
    return UnitResolver(db.get("01001"))


class TestExactResolution:
    def test_known_units(self, butter_resolver):
        assert butter_resolver.resolve("cup").grams_per_unit == 227.0
        assert butter_resolver.resolve("tbsp").grams_per_unit == 14.2
        assert butter_resolver.resolve("stick").grams_per_unit == 113.0
        assert butter_resolver.resolve("pat").grams_per_unit == 5.0
        for unit in ("cup", "tbsp"):
            assert butter_resolver.resolve(unit).method == METHOD_EXACT

    def test_known_units_dict(self, butter_resolver):
        known = butter_resolver.known_units()
        assert known["cup"] == 227.0
        assert known["tablespoon"] == 14.2


class TestVolumeDerivation:
    def test_paper_teaspoon_of_butter(self, butter_resolver):
        # §II-C: teaspoon is absent from butter's portions but derivable
        # because volume ratios are constant; §III: 1 tsp ≈ 35 kcal.
        resolution = butter_resolver.resolve("teaspoon")
        assert resolution is not None
        assert resolution.method == METHOD_VOLUME
        assert resolution.grams_per_unit == pytest.approx(14.2 / 3, rel=0.02)

    def test_derivation_uses_smallest_known_volume(self, butter_resolver):
        # tbsp (smaller) wins over cup as the derivation base.
        pint = butter_resolver.resolve("pint")
        assert pint.grams_per_unit == pytest.approx(14.2 * 32, rel=0.02)

    def test_no_volume_portion_no_derivation(self, db):
        # Eggs have only piece portions: volume must fail.
        resolver = UnitResolver(db.get("01123"))
        assert resolver.resolve("cup") is not None  # cup portion exists
        resolver_bacon = UnitResolver(db.get("10123"))
        assert resolver_bacon.resolve("teaspoon") is None


class TestMassResolution:
    def test_mass_needs_no_portion(self, butter_resolver):
        assert butter_resolver.resolve("gram").grams_per_unit == 1.0
        assert butter_resolver.resolve("pound").grams_per_unit == pytest.approx(453.592)
        assert butter_resolver.resolve("ounce").method == METHOD_MASS


class TestSizesAndCounts:
    def test_sizes_equivalent(self, db):
        # Zucchini has medium/large but no small portion: paper treats
        # all three sizes as equivalent under ambiguity.
        resolver = UnitResolver(db.get("11477"))
        small = resolver.resolve("small")
        assert small is not None and small.method == METHOD_SIZE

    def test_exact_size_preferred(self, db):
        resolver = UnitResolver(db.get("11282"))  # onion
        assert resolver.resolve("medium").grams_per_unit == 110.0
        assert resolver.resolve("large").grams_per_unit == 150.0
        assert resolver.resolve("small").grams_per_unit == 70.0

    def test_bare_count_uses_sr_sequence_order(self, db):
        # Onion: "medium" is SR's first portion (110 g).
        counted = UnitResolver(db.get("11282")).resolve(None)
        assert counted.method == METHOD_COUNT
        assert counted.grams_per_unit == 110.0
        # Egg: "large" is SR's first portion (50 g).
        assert UnitResolver(db.get("01123")).resolve(None).grams_per_unit == 50.0

    def test_bare_count_skips_measures(self, db):
        # Shallots: portions are tbsp + shallot; counting one must not
        # return the tablespoon.
        resolver = UnitResolver(db.get("11677"))
        counted = resolver.resolve(None)
        assert counted.grams_per_unit == 25.0

    def test_whole_keyword(self, db):
        resolver = UnitResolver(db.get("01123"))
        assert resolver.resolve("whole").grams_per_unit == 50.0

    def test_half_of_piece(self, db):
        resolver = UnitResolver(db.get("11282"))
        half = resolver.resolve("half")
        assert half.grams_per_unit == 55.0


class TestUnresolvable:
    def test_unknown_unit(self, butter_resolver):
        assert butter_resolver.resolve("sprig") is None

    def test_garbage_unit(self, butter_resolver):
        assert butter_resolver.resolve("zorgles") is None
