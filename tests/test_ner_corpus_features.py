"""Tests for the NER corpus records, TSV I/O and feature templates."""

import pytest

from repro.ner.corpus import TAGS, TaggedPhrase, read_tsv, write_tsv
from repro.ner.features import extract_features, token_features, word_shape


class TestTaggedPhrase:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TaggedPhrase(("a", "b"), ("NAME",))

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            TaggedPhrase(("a",), ("BOGUS",))

    def test_entity_text(self):
        p = TaggedPhrase(("1", "small", "onion"), ("QUANTITY", "SIZE", "NAME"))
        assert p.entity_text("NAME") == "onion"
        assert p.entity_text("SIZE") == "small"
        assert p.entity_text("STATE") == ""

    def test_entity_text_unknown_tag(self):
        p = TaggedPhrase(("a",), ("NAME",))
        with pytest.raises(ValueError):
            p.entity_text("WHAT")

    def test_spans(self):
        p = TaggedPhrase(
            ("1/2", "lb", "lean", "ground", "beef"),
            ("QUANTITY", "UNIT", "STATE", "STATE", "NAME"),
        )
        assert p.spans() == [
            ("QUANTITY", 0, 1), ("UNIT", 1, 2), ("STATE", 2, 4), ("NAME", 4, 5)]

    def test_spans_omit_o(self):
        p = TaggedPhrase(("onion", ",", "chopped"), ("NAME", "O", "STATE"))
        assert ("O", 1, 2) not in p.spans()

    def test_text(self):
        p = TaggedPhrase(("1", "cup"), ("QUANTITY", "UNIT"))
        assert p.text == "1 cup"

    def test_tag_inventory(self):
        assert set(TAGS) == {"O", "NAME", "STATE", "UNIT", "QUANTITY",
                             "TEMP", "DF", "SIZE"}


class TestTSV:
    def test_round_trip(self, tmp_path):
        phrases = [
            TaggedPhrase(("1", "cup", "sugar"), ("QUANTITY", "UNIT", "NAME")),
            TaggedPhrase(("salt",), ("NAME",)),
        ]
        path = tmp_path / "corpus.tsv"
        write_tsv(phrases, path)
        assert read_tsv(path) == phrases

    def test_bad_line_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("token with no tab\n")
        with pytest.raises(ValueError):
            read_tsv(path)

    def test_trailing_phrase_without_blank_line(self, tmp_path):
        path = tmp_path / "t.tsv"
        path.write_text("salt\tNAME")
        assert read_tsv(path) == [TaggedPhrase(("salt",), ("NAME",))]


class TestFeatures:
    def test_word_shapes(self):
        assert word_shape("Onion") == "Xx"
        assert word_shape("1/2") == "d/d"
        assert word_shape("all-purpose") == "x-x"
        assert word_shape("2.5") == "d.d"

    def test_identity_and_context(self):
        feats = token_features(["1", "small", "onion"], 1)
        assert "w=small" in feats
        assert "w-1=1" in feats
        assert "w+1=onion" in feats
        assert "lex=size" in feats
        assert "prev_is_number" in feats

    def test_boundaries(self):
        tokens = ["1", "cup"]
        assert "BOS" in token_features(tokens, 0)
        assert "EOS" in token_features(tokens, 1)

    def test_lexicon_features(self):
        assert "lex=unit" in token_features(["cup"], 0)
        assert "lex=temp" in token_features(["cold"], 0)
        assert "lex=df" in token_features(["fresh"], 0)
        assert "lex=state" in token_features(["chopped"], 0)
        assert "is_fraction" in token_features(["1/2"], 0)
        assert "is_punct" in token_features([","], 0)

    def test_extract_features_shape(self):
        feats = extract_features(("1", "cup", "sugar"))
        assert len(feats) == 3
        assert all(isinstance(f, str) for fs in feats for f in fs)
