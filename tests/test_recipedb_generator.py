"""Tests for the synthetic RecipeDB corpus generator."""

import pytest

from repro.recipedb.corpus import load_recipes_jsonl, save_recipes_jsonl
from repro.recipedb.cuisines import CUISINES, STAPLES
from repro.recipedb.generator import GeneratorConfig, RecipeGenerator
from repro.recipedb.ingredients import (
    INGREDIENTS,
    mappable_specs,
    spec_by_key,
    unmappable_specs,
)


class TestSpecs:
    def test_spec_lookup(self):
        assert spec_by_key("butter").ndb_no == "01001"
        with pytest.raises(KeyError):
            spec_by_key("nope")

    def test_all_mappable_ndbs_exist(self, db):
        for spec in mappable_specs():
            assert spec.ndb_no in db, spec.key

    def test_unmappable_have_hidden_nutrition(self):
        specs = unmappable_specs()
        assert len(specs) >= 10
        for spec in specs:
            assert spec.kcal_per_100g is not None and spec.kcal_per_100g > 0

    def test_paper_unmappable_example_present(self):
        # §III names garam masala as the canonical unmapped ingredient.
        assert spec_by_key("garam_masala").ndb_no is None

    def test_26_cuisines_reference_valid_specs(self):
        assert len(CUISINES) == 26
        keys = {spec.key for spec in INGREDIENTS}
        for cuisine, pool in CUISINES.items():
            assert len(pool) >= 10, cuisine
            for key in pool:
                assert key in keys, (cuisine, key)
        for staple in STAPLES:
            assert staple in keys


class TestGeneration:
    def test_deterministic(self):
        a = RecipeGenerator().generate(10)
        b = RecipeGenerator().generate(10)
        assert [r.title for r in a] == [r.title for r in b]
        assert [i.text for r in a for i in r.ingredients] == [
            i.text for r in b for i in r.ingredients]

    def test_seed_changes_output(self):
        a = RecipeGenerator(config=GeneratorConfig(seed=1)).generate(10)
        b = RecipeGenerator(config=GeneratorConfig(seed=2)).generate(10)
        assert [r.title for r in a] != [r.title for r in b]

    def test_recipe_invariants(self, small_corpus):
        for recipe in small_corpus:
            assert recipe.servings > 0
            assert recipe.cuisine in CUISINES
            assert recipe.source in ("AllRecipes", "FOOD.com")
            assert 4 <= len(recipe.ingredients) <= 12
            assert recipe.gold_calories_per_serving >= 0.0

    def test_truth_invariants(self, small_corpus, db):
        for recipe in small_corpus:
            for ingredient in recipe.ingredients:
                truth = ingredient.truth
                assert truth.grams > 0, ingredient.text
                assert truth.kcal >= 0
                if truth.ndb_no is not None:
                    food = db.get(truth.ndb_no)
                    expected = truth.grams * food.energy_kcal / 100.0
                    assert truth.kcal == pytest.approx(expected, rel=1e-6)

    def test_gold_label_near_truth(self, small_corpus):
        for recipe in small_corpus:
            truth = recipe.true_kcal_per_serving
            if truth < 50:
                continue
            assert recipe.gold_calories_per_serving == pytest.approx(
                truth, rel=0.25)

    def test_tags_align_with_tokens(self, small_corpus):
        for recipe in small_corpus:
            for ingredient in recipe.ingredients:
                assert len(ingredient.tagged.tokens) == len(ingredient.tagged.tags)
                assert ingredient.text == " ".join(ingredient.tagged.tokens)
                assert "NAME" in ingredient.tagged.tags

    def test_phrase_pool(self, generator):
        items = generator.generate_phrases(50)
        assert len(items) == 50
        assert len({item.text for item in items}) > 25  # diverse

    def test_bad_args(self, generator):
        with pytest.raises(ValueError):
            generator.generate(0)
        with pytest.raises(ValueError):
            generator.generate_phrases(-1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(min_ingredients=5, max_ingredients=3)
        with pytest.raises(ValueError):
            GeneratorConfig(p_trailer=1.5)


class TestJSONLRoundTrip:
    def test_round_trip(self, small_corpus, tmp_path):
        path = tmp_path / "corpus.jsonl"
        save_recipes_jsonl(small_corpus, path)
        reloaded = load_recipes_jsonl(path)
        assert len(reloaded) == len(small_corpus)
        for a, b in zip(small_corpus, reloaded):
            assert a.recipe_id == b.recipe_id
            assert a.servings == b.servings
            assert a.gold_calories_per_serving == pytest.approx(
                b.gold_calories_per_serving)
            assert [i.text for i in a.ingredients] == [
                i.text for i in b.ingredients]
            assert [i.truth.grams for i in a.ingredients] == pytest.approx(
                [i.truth.grams for i in b.ingredients])


class TestLineReuse:
    def test_default_output_unchanged(self):
        """line_reuse=0 consumes no randomness: corpora are identical
        to a config without the knob."""
        plain = RecipeGenerator(config=GeneratorConfig(seed=7)).generate(30)
        explicit = RecipeGenerator(
            config=GeneratorConfig(seed=7, line_reuse=0.0)
        ).generate(30)
        assert [
            [i.text for i in r.ingredients] for r in plain
        ] == [[i.text for i in r.ingredients] for r in explicit]

    def test_reuse_increases_duplication(self):
        def distinct_ratio(reuse: float) -> float:
            recipes = RecipeGenerator(
                config=GeneratorConfig(seed=7, line_reuse=reuse)
            ).generate(300)
            lines = [t for r in recipes for t in r.ingredient_texts]
            return len(set(lines)) / len(lines)

        assert distinct_ratio(0.8) < distinct_ratio(0.4) < distinct_ratio(0.0)

    def test_reused_lines_are_replayed_wholesale(self):
        """Reuse replays the full Ingredient object — text, tags and
        ground truth stay consistent because the line is shared, not
        re-rendered.  (Independently generated lines may collide on
        text with different tags; replays cannot.)"""
        recipes = RecipeGenerator(
            config=GeneratorConfig(seed=7, line_reuse=0.8)
        ).generate(300)
        items = [i for r in recipes for i in r.ingredients]
        distinct_objects = len({id(i) for i in items})
        assert distinct_objects < 0.6 * len(items)  # replay happened
        # and an object-shared line is one line: text count shrinks too
        assert len({i.text for i in items}) <= distinct_objects

    def test_deterministic_under_seed(self):
        a = RecipeGenerator(
            config=GeneratorConfig(seed=13, line_reuse=0.7)
        ).generate(50)
        b = RecipeGenerator(
            config=GeneratorConfig(seed=13, line_reuse=0.7)
        ).generate(50)
        assert [
            [i.text for i in r.ingredients] for r in a
        ] == [[i.text for i in r.ingredients] for r in b]

    def test_reuse_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(line_reuse=1.5)
