"""Tests for unit normalization and the alias table."""

import pytest

from repro.units.aliases import CANONICAL_UNITS, SIZE_UNITS, canonicalize_unit
from repro.units.normalize import clean_unit_token, normalize_unit


class TestCanonicalize:
    @pytest.mark.parametrize("alias,canonical", [
        ("tbsp", "tablespoon"),
        ("tbs", "tablespoon"),
        ("tsp", "teaspoon"),
        ("lb", "pound"),
        ("lbs", "pound"),
        ("oz", "ounce"),
        ("g", "gram"),
        ("kg", "kilogram"),
        ("ml", "milliliter"),
        ("pt", "pint"),
        ("qt", "quart"),
        ("gal", "gallon"),
        ("pkg", "package"),
        ("cup", "cup"),
        ("floz", "fluid ounce"),
    ])
    def test_aliases(self, alias, canonical):
        assert canonicalize_unit(alias) == canonical

    def test_unknown_returns_none(self):
        assert canonicalize_unit("wombat") is None

    def test_sizes_are_canonical_units(self):
        assert SIZE_UNITS <= CANONICAL_UNITS


class TestCleanUnitToken:
    def test_paper_pat_example(self):
        assert clean_unit_token('pat (1" sq, 1/3" high)') == "pat"

    def test_lemmatizes_plural(self):
        assert clean_unit_token("cups") == "cup"

    def test_first_word_rule(self):
        assert clean_unit_token("cup, shredded") == "cup"

    def test_fl_oz_joined(self):
        assert clean_unit_token("fl oz") == "floz"

    def test_empty_and_numeric(self):
        assert clean_unit_token("") is None
        assert clean_unit_token("1/2") is None

    def test_qualifier_skipped(self):
        assert clean_unit_token("heaping tablespoon") == "tablespoon"


class TestNormalizeUnit:
    @pytest.mark.parametrize("raw,expected", [
        ('pat (1" sq, 1/3" high)', "pat"),
        ("Tbsps", "tablespoon"),
        ("cups, sliced", "cup"),
        ("fl oz", "fluid ounce"),
        ("fluid ounces", "fluid ounce"),
        ("large (3-1/4\" dia)", "large"),
        ("cup, crumbled, not packed", "cup"),
        ("slice (1 oz)", "slice"),
        ("container (8 oz)", "container"),
        ("medium whole (2-3/5\" dia)", "medium"),
        ("leaves", "leaf"),
        ("10 sprigs", "sprig"),
        ("LB", "pound"),
    ])
    def test_normalization(self, raw, expected):
        assert normalize_unit(raw) == expected

    def test_unknown_unit_none(self):
        assert normalize_unit("zorgles") is None

    def test_all_canonical_units_self_normalize(self):
        for unit in CANONICAL_UNITS:
            assert normalize_unit(unit) == unit, unit
