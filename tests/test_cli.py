"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestEstimate:
    def test_estimates_recipe(self, capsys):
        code = main(["estimate", "--servings", "2",
                     "1 cup white sugar", "2 tbsp butter"])
        assert code == 0
        out = capsys.readouterr().out
        # Bare "sugar" resolves to "Sugars, brown" by SR index order
        # (19334 < 19335) — heuristic (i) verbatim; "white sugar"
        # disambiguates via term priority.
        assert "Sugars," in out
        assert "energy_kcal" in out

    def test_unmatched_shown(self, capsys):
        main(["estimate", "2 tsp garam masala"])
        assert "(unmatched)" in capsys.readouterr().out


class TestParse:
    def test_shows_tags_and_entities(self, capsys):
        code = main(["parse", "1 small onion , finely chopped"])
        assert code == 0
        out = capsys.readouterr().out
        assert "QUANTITY" in out and "SIZE" in out and "NAME" in out
        assert "name='onion'" in out


class TestMatch:
    def test_match_found(self, capsys):
        code = main(["match", "red lentils"])
        assert code == 0
        assert "Lentils, pink or red, raw" in capsys.readouterr().out

    def test_match_with_state(self, capsys):
        code = main(["match", "coriander", "--state", "ground"])
        assert code == 0
        assert "Coriander (cilantro) leaves, raw" in capsys.readouterr().out

    def test_unmatched_exit_code(self, capsys):
        assert main(["match", "garam masala"]) == 1
        assert "UNMATCHED" in capsys.readouterr().out

    def test_explain(self, capsys):
        code = main(["match", "apple", "--explain"])
        assert code == 0
        out = capsys.readouterr().out
        assert "winner: Apples, raw, with skin" in out
        assert "decided by" in out


class TestExplain:
    def test_explain_resolved_line(self, capsys):
        code = main(["explain", "2 cups all-purpose flour"])
        assert code == 0
        out = capsys.readouterr().out
        assert "verdict: status=matched reason=ner-unit" in out
        assert "winner:" in out
        assert "unit resolution chain" in out
        assert "trace: ner-unit:resolved" in out

    def test_explain_context_rescue(self, capsys):
        code = main([
            "explain", "1 head butter cup",
            "--context", "2 tablespoons butter",
            "--context", "1 tablespoon butter , melted",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "statistics from 2 context line(s)" in out
        assert "reason=corpus-frequent-unit" in out

    def test_explain_unresolved_exit_code(self, capsys):
        assert main(["explain", "2 teaspoons garam masala"]) == 1
        assert "no-description-match" in capsys.readouterr().out

    def test_explain_rejects_bad_top(self, capsys):
        assert main(["explain", "x", "--top", "-1"]) == 2
        assert "--top must be >= 0" in capsys.readouterr().out


class TestGenerate:
    def test_prints_recipes(self, capsys):
        code = main(["generate", "--recipes", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("# ") == 2

    def test_writes_jsonl(self, tmp_path, capsys):
        out_file = tmp_path / "c.jsonl"
        code = main(["generate", "--recipes", "3", "--out", str(out_file)])
        assert code == 0
        from repro.recipedb.corpus import load_recipes_jsonl

        assert len(load_recipes_jsonl(out_file)) == 3

    def test_seed_changes_corpus(self, capsys):
        main(["generate", "--recipes", "2", "--seed", "1"])
        first = capsys.readouterr().out
        main(["generate", "--recipes", "2", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second


class TestTables:
    def test_all_four_tables(self, capsys):
        code = main(["tables"])
        assert code == 0
        out = capsys.readouterr().out
        for marker in ("Table I", "Table II", "Table III", "Table IV",
                       "Butter, salted"):
            assert marker in out


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestBatch:
    def test_batch_estimates_corpus(self, tmp_path, capsys):
        path = tmp_path / "corpus.jsonl"
        assert main(["generate", "--recipes", "4", "--out", str(path)]) == 0
        capsys.readouterr()
        code = main(["batch", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "kcal/serving" in out
        assert "4 recipes" in out and "lines/s" in out

    def test_batch_single_pass(self, tmp_path, capsys):
        path = tmp_path / "corpus.jsonl"
        main(["generate", "--recipes", "2", "--out", str(path)])
        capsys.readouterr()
        assert main(["batch", str(path), "--passes", "1"]) == 0
        assert "1 pass(es)" in capsys.readouterr().out

    def test_batch_empty_corpus(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["batch", str(path)]) == 1
        assert "empty corpus" in capsys.readouterr().out

    def test_batch_rejects_bad_passes(self, tmp_path, capsys):
        path = tmp_path / "corpus.jsonl"
        main(["generate", "--recipes", "2", "--out", str(path)])
        capsys.readouterr()
        assert main(["batch", str(path), "--passes", "0"]) == 2
        assert "--passes must be >= 1" in capsys.readouterr().out

    def test_batch_sharded_workers(self, tmp_path, capsys):
        path = tmp_path / "corpus.jsonl"
        main(["generate", "--recipes", "6", "--out", str(path)])
        capsys.readouterr()
        assert main(["batch", str(path), "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "6 recipes" in out
        assert "2 worker(s), two-phase corpus protocol" in out

    def test_batch_jsonl_streaming(self, tmp_path, capsys):
        path = tmp_path / "corpus.jsonl"
        main(["generate", "--recipes", "5", "--out", str(path)])
        capsys.readouterr()
        assert main(["batch", str(path), "--jsonl"]) == 0
        out = capsys.readouterr().out
        assert "5 recipes" in out
        assert "1 worker(s), two-phase corpus protocol" in out

    def test_batch_modes_agree_per_recipe(self, tmp_path, capsys):
        """--workers/--jsonl change execution strategy, never results:
        all three modes run the same two-phase corpus protocol."""
        path = tmp_path / "corpus.jsonl"
        main(["generate", "--recipes", "5", "--out", str(path)])
        capsys.readouterr()
        main(["batch", str(path), "--jsonl"])
        streamed = capsys.readouterr().out.splitlines()
        main(["batch", str(path), "--workers", "2"])
        sharded = capsys.readouterr().out.splitlines()
        main(["batch", str(path)])
        classic = capsys.readouterr().out.splitlines()

        # identical per-recipe lines; the trailing summary differs by
        # mode (timing line, plus the engine modes' duplicate-collapse
        # accounting — absent from the in-process path).
        def recipe_lines(lines):
            return [line for line in lines if "kcal/serving" in line]

        assert (
            recipe_lines(streamed)
            == recipe_lines(sharded)
            == recipe_lines(classic)
        )
        assert len(recipe_lines(classic)) == 5

    def test_batch_engine_ignores_passes_with_notice(self, tmp_path, capsys):
        path = tmp_path / "corpus.jsonl"
        main(["generate", "--recipes", "2", "--out", str(path)])
        capsys.readouterr()
        assert main(["batch", str(path), "--jsonl", "--passes", "3"]) == 0
        assert "--passes 3 is ignored" in capsys.readouterr().out

    def test_batch_reasons_breakdown(self, tmp_path, capsys):
        path = tmp_path / "corpus.jsonl"
        main(["generate", "--recipes", "4", "--out", str(path)])
        capsys.readouterr()
        assert main(["batch", str(path), "--reasons"]) == 0
        out = capsys.readouterr().out
        assert "reason-code breakdown:" in out
        assert "unit gap (Figure 2" in out
        assert "resolved by:" in out

    def test_batch_reasons_identical_across_engine_modes(
        self, tmp_path, capsys
    ):
        path = tmp_path / "corpus.jsonl"
        main(["generate", "--recipes", "5", "--out", str(path)])
        capsys.readouterr()
        main(["batch", str(path), "--reasons"])
        classic = capsys.readouterr().out
        main(["batch", str(path), "--reasons", "--workers", "2"])
        sharded = capsys.readouterr().out
        tail = "reason-code breakdown:"
        assert classic.split(tail)[1] == sharded.split(tail)[1]

    def test_batch_rejects_bad_workers(self, tmp_path, capsys):
        path = tmp_path / "corpus.jsonl"
        main(["generate", "--recipes", "2", "--out", str(path)])
        capsys.readouterr()
        assert main(["batch", str(path), "--workers", "0"]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().out


class TestServe:
    def test_serve_wires_config_through(self, monkeypatch):
        import repro.cli as cli

        captured = {}

        def fake_serve(config, ready_file=None):
            captured["config"] = config
            captured["ready_file"] = ready_file
            return 0

        monkeypatch.setattr(cli, "serve", fake_serve)
        code = main(["serve", "--port", "0", "--workers", "2",
                     "--cache-cap", "128", "--host", "0.0.0.0",
                     "--procs", "2"])
        assert code == 0
        config = captured["config"]
        assert config.host == "0.0.0.0"
        assert config.port == 0
        assert config.workers == 2
        assert config.cache_cap == 128
        assert config.procs == 2
        assert captured["ready_file"] is None

    def test_serve_defaults(self, monkeypatch):
        import repro.cli as cli
        from repro.service.state import DEFAULT_RESPONSE_CACHE_CAP

        captured = {}
        monkeypatch.setattr(
            cli, "serve",
            lambda config, ready_file=None: (
                captured.setdefault("c", config) and 0
            ),
        )
        main(["serve"])
        config = captured["c"]
        assert (config.host, config.port, config.workers) == (
            "127.0.0.1", 8080, 1)
        assert config.cache_cap == DEFAULT_RESPONSE_CACHE_CAP
        assert config.procs == 1

    def test_serve_rejects_bad_workers(self, capsys):
        assert main(["serve", "--workers", "0"]) == 2
        assert "workers must be >= 1" in capsys.readouterr().out

    def test_serve_artifact_flag_lands_in_spec(self, monkeypatch,
                                               tmp_path):
        import repro.cli as cli
        from repro.artifacts import save_artifact
        from repro.core.estimator import NutritionEstimator

        path = tmp_path / "p.artifact"
        save_artifact(path, NutritionEstimator())
        captured = {}
        monkeypatch.setattr(
            cli, "serve",
            lambda config, ready_file=None: (
                captured.setdefault("c", config) and 0
            ),
        )
        main(["serve", "--artifact", str(path)])
        assert captured["c"].spec.artifact_path == str(path)

    def test_serve_corrupt_artifact_exits_typed(self, tmp_path, capsys):
        bad = tmp_path / "bad.artifact"
        bad.write_bytes(b"REPROART garbage")
        assert main(["serve", "--artifact", str(bad)]) == 2
        assert "error:" in capsys.readouterr().out


class TestBuildArtifact:
    def test_builds_loadable_artifact(self, tmp_path, capsys):
        from repro.artifacts import load_artifact

        path = tmp_path / "out.artifact"
        assert main(["build-artifact", str(path)]) == 0
        out = capsys.readouterr().out
        assert "format v1" in out and "tagger=rule" in out
        assert load_artifact(path).meta["foods"] > 0

    def test_rejects_bad_training_args(self, tmp_path, capsys):
        path = str(tmp_path / "x.artifact")
        assert main(["build-artifact", path, "--tagger", "perceptron",
                     "--train-phrases", "0"]) == 2
        assert "--train-phrases must be >= 1" in capsys.readouterr().out
        assert main(["build-artifact", path, "--tagger", "perceptron",
                     "--epochs", "0"]) == 2
        assert "--epochs must be >= 1" in capsys.readouterr().out

    def test_help_epilog_mentions_new_subcommands(self, capsys):
        import pytest as _pytest

        with _pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "serve" in out
        assert "batch corpus.jsonl --workers 4 --jsonl" in out
