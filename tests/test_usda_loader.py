"""Tests for the SR ASCII loader and JSON round trip."""

import pytest

from repro.usda.loader import (
    SRFormatError,
    dump_sr_directory,
    from_json,
    load_sr_directory,
    parse_sr_fields,
    to_json,
)


class TestParseSRFields:
    def test_text_fields(self):
        assert parse_sr_fields("~01001~^~0100~^~Butter, salted~") == [
            "01001", "0100", "Butter, salted"]

    def test_numeric_fields(self):
        assert parse_sr_fields("~01001~^~208~^717") == ["01001", "208", "717"]

    def test_empty_field(self):
        assert parse_sr_fields("~a~^^3") == ["a", None, "3"]

    def test_tilde_in_middle_preserved(self):
        assert parse_sr_fields('~pat (1" sq)~^5') == ['pat (1" sq)', "5"]


class TestRoundTrip:
    def test_full_round_trip(self, db, tmp_path):
        dump_sr_directory(db, tmp_path)
        reloaded = load_sr_directory(tmp_path)
        assert len(reloaded) == len(db)
        for original in db:
            loaded = reloaded.get(original.ndb_no)
            assert loaded.description == original.description
            assert loaded.food_group == original.food_group
            assert loaded.nutrients == pytest.approx(original.nutrients)
            assert len(loaded.portions) == len(original.portions)
        # index order preserved (heuristic (i) depends on it)
        assert reloaded.descriptions() == db.descriptions()

    def test_missing_table_raises(self, tmp_path):
        (tmp_path / "FOOD_DES.txt").write_text("~1~^~G~^~D~\n")
        with pytest.raises(FileNotFoundError):
            load_sr_directory(tmp_path)

    def test_short_line_raises(self, tmp_path):
        (tmp_path / "FOOD_DES.txt").write_text("~1~\n")
        (tmp_path / "NUT_DATA.txt").write_text("")
        (tmp_path / "WEIGHT.txt").write_text("")
        with pytest.raises(SRFormatError):
            load_sr_directory(tmp_path)

    def test_bad_number_raises(self, tmp_path):
        (tmp_path / "FOOD_DES.txt").write_text("~1~^~G~^~D~\n")
        (tmp_path / "NUT_DATA.txt").write_text("~1~^~208~^~oops~\n")
        (tmp_path / "WEIGHT.txt").write_text("")
        with pytest.raises(SRFormatError):
            load_sr_directory(tmp_path)

    def test_untracked_nutrient_ignored(self, tmp_path):
        (tmp_path / "FOOD_DES.txt").write_text("~1~^~G~^~D~\n")
        (tmp_path / "NUT_DATA.txt").write_text("~1~^~999~^5\n~1~^~208~^70\n")
        (tmp_path / "WEIGHT.txt").write_text("~1~^1^1.0^~cup~^100\n")
        db = load_sr_directory(tmp_path)
        assert db.get("1").nutrients == {"energy_kcal": 70.0}

    def test_extra_columns_tolerated(self, tmp_path):
        # Genuine SR FOOD_DES lines carry ~14 columns.
        (tmp_path / "FOOD_DES.txt").write_text(
            "~1~^~G~^~D~^~short~^~sci~^~Y~^1^~ref~^1^2^3^4^5^6\n")
        (tmp_path / "NUT_DATA.txt").write_text("")
        (tmp_path / "WEIGHT.txt").write_text("")
        db = load_sr_directory(tmp_path)
        assert db.get("1").description == "D"


class TestJSON:
    def test_json_round_trip(self, db):
        text = to_json(db)
        reloaded = from_json(text)
        assert len(reloaded) == len(db)
        butter = reloaded.get("01001")
        assert butter.description == "Butter, salted"
        assert butter.portions[0].grams == 5.0
