"""Artifact store: format validation, failure paths, component restore.

Every way a snapshot can be unusable must surface as a *typed* error —
truncation, checksum damage, foreign files, future format versions,
and artifacts built against a different database can never be
mistaken for a successful load (the "no silent misloads" guarantee).
Bit-identical output parity of loaded estimators lives in
``tests/test_artifact_parity.py``.
"""

from __future__ import annotations

import struct

import pytest

from repro import EstimatorSpec, NutritionEstimator
from repro.artifacts import (
    FORMAT_VERSION,
    MAGIC,
    ArtifactCorruptError,
    ArtifactError,
    ArtifactMismatchError,
    ArtifactVersionError,
    database_fingerprint,
    load_artifact,
    save_artifact,
)
from repro.artifacts.format import (
    HEADER_SIZE,
    pack_payload,
    read_artifact_bytes,
    write_artifact_bytes,
)
from repro.usda.database import load_default_database
from repro.usda.schema import FoodItem, Portion


@pytest.fixture(scope="module")
def artifact_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("artifacts") / "pipeline.artifact"
    save_artifact(path, NutritionEstimator())
    return path


@pytest.fixture(scope="module")
def artifact_blob(artifact_path) -> bytes:
    return artifact_path.read_bytes()


def _write(tmp_path, blob: bytes):
    path = tmp_path / "damaged.artifact"
    path.write_bytes(blob)
    return path


class TestRoundTrip:
    def test_load_reports_build_metadata(self, artifact_path):
        snapshot = load_artifact(artifact_path, cache=False)
        meta = snapshot.meta
        assert meta["format"] == FORMAT_VERSION
        assert meta["foods"] == len(load_default_database())
        assert meta["tagger"] == "rule"
        assert snapshot.tagger_kind == "rule"

    def test_restored_database_matches_default(self, artifact_path):
        db = load_artifact(artifact_path, cache=False).database()
        default = load_default_database()
        assert len(db) == len(default)
        assert db.descriptions() == default.descriptions()
        assert db.vocabulary() == default.vocabulary()
        # SR index order — the tie-break key — survives the round trip.
        for food in default:
            assert db.index_of(food.ndb_no) == default.index_of(food.ndb_no)

    def test_artifact_bytes_are_deterministic(self, artifact_path, tmp_path):
        again = tmp_path / "again.artifact"
        save_artifact(again, NutritionEstimator())
        assert again.read_bytes() == artifact_path.read_bytes()

    def test_artifact_bytes_are_deterministic_across_processes(
        self, tmp_path
    ):
        """Builds must agree byte-for-byte even under different str
        hash randomization (set/dict iteration orders differ per
        process) — the docs' rebuild-and-compare freshness check
        depends on it."""
        import os
        import subprocess
        import sys

        for seed in ("1", "2"):
            subprocess.run(
                [
                    sys.executable,
                    "-c",
                    "import sys; from repro import NutritionEstimator; "
                    "from repro.artifacts import save_artifact; "
                    "save_artifact(sys.argv[1], NutritionEstimator())",
                    str(tmp_path / f"hash{seed}.artifact"),
                ],
                env={**os.environ, "PYTHONHASHSEED": seed},
                check=True,
            )
        assert (tmp_path / "hash1.artifact").read_bytes() == (
            tmp_path / "hash2.artifact"
        ).read_bytes()

    def test_cached_load_reuses_snapshot(self, artifact_path):
        first = load_artifact(artifact_path)
        second = load_artifact(artifact_path)
        assert first is second

    def test_rewritten_file_invalidates_cache(self, tmp_path):
        path = tmp_path / "rewrite.artifact"
        save_artifact(path, NutritionEstimator())
        first = load_artifact(path)
        write_artifact_bytes(
            path, {**first._payload, "meta": {**first.meta, "foods": 1}}
        )
        assert load_artifact(path).meta["foods"] == 1


class TestCorruptFiles:
    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_artifact(tmp_path / "nope.artifact")

    def test_empty_file(self, tmp_path):
        with pytest.raises(ArtifactCorruptError, match="truncated"):
            read_artifact_bytes(_write(tmp_path, b""))

    def test_truncated_header(self, tmp_path, artifact_blob):
        with pytest.raises(ArtifactCorruptError, match="truncated"):
            read_artifact_bytes(
                _write(tmp_path, artifact_blob[: HEADER_SIZE // 2])
            )

    def test_truncated_payload(self, tmp_path, artifact_blob):
        path = _write(tmp_path, artifact_blob[: HEADER_SIZE + 100])
        with pytest.raises(ArtifactCorruptError, match="truncated"):
            load_artifact(path, cache=False)

    def test_trailing_garbage(self, tmp_path, artifact_blob):
        path = _write(tmp_path, artifact_blob + b"extra")
        with pytest.raises(ArtifactCorruptError, match="truncated"):
            load_artifact(path, cache=False)

    def test_foreign_file(self, tmp_path):
        blob = b"PK\x03\x04 definitely not a repro artifact " * 4
        assert len(blob) > HEADER_SIZE
        path = _write(tmp_path, blob)
        with pytest.raises(ArtifactCorruptError, match="magic"):
            load_artifact(path, cache=False)

    def test_flipped_payload_byte_fails_checksum(
        self, tmp_path, artifact_blob
    ):
        corrupt = bytearray(artifact_blob)
        corrupt[-1] ^= 0xFF
        path = _write(tmp_path, bytes(corrupt))
        with pytest.raises(ArtifactCorruptError, match="checksum"):
            load_artifact(path, cache=False)

    def test_non_builtin_payload_objects_are_refused(self, tmp_path):
        import hashlib
        import pickle

        # Any global lookup is refused — a stdlib class stands in for
        # the classic pickle gadget.
        body = pickle.dumps({"meta": Portion(1, 1.0, "cup", 227.0)})
        blob = (
            struct.pack(
                ">8sIQ32s",
                MAGIC,
                FORMAT_VERSION,
                len(body),
                hashlib.sha256(body).digest(),
            )
            + body
        )
        with pytest.raises(ArtifactCorruptError, match="non-builtin"):
            load_artifact(_write(tmp_path, blob), cache=False)

    def test_valid_container_with_missing_sections(self, tmp_path):
        path = tmp_path / "hollow.artifact"
        write_artifact_bytes(path, {"meta": {}})
        with pytest.raises(ArtifactCorruptError, match="missing sections"):
            load_artifact(path, cache=False)


class TestVersioning:
    @pytest.mark.parametrize("version", [0, 2, 99])
    def test_other_format_versions_are_refused(
        self, tmp_path, artifact_blob, version
    ):
        blob = (
            artifact_blob[:8]
            + struct.pack(">I", version)
            + artifact_blob[12:]
        )
        with pytest.raises(ArtifactVersionError, match=str(version)):
            load_artifact(_write(tmp_path, blob), cache=False)


def _tiny_database_foods() -> tuple[FoodItem, ...]:
    return (
        FoodItem(
            ndb_no="01001",
            description="Butter, salted",
            food_group="Dairy and Egg Products",
            nutrients={"energy_kcal": 717.0},
            portions=(Portion(1, 1.0, "cup", 227.0),),
        ),
    )


class TestDatabaseMismatch:
    def test_spec_with_different_database_is_refused(
        self, artifact_path
    ):
        spec = EstimatorSpec(
            foods=_tiny_database_foods(), artifact_path=str(artifact_path)
        )
        with pytest.raises(ArtifactMismatchError, match="different database"):
            spec.build()

    def test_spec_pinning_the_captured_database_loads(self, artifact_path):
        spec = EstimatorSpec(
            foods=tuple(load_default_database()),
            artifact_path=str(artifact_path),
        )
        estimator = spec.build()
        assert len(estimator.database) == len(load_default_database())

    def test_fingerprint_is_order_sensitive(self):
        foods = list(load_default_database())
        assert database_fingerprint(foods) != database_fingerprint(
            list(reversed(foods))
        )


class TestArtifactSwapRace:
    def test_running_engine_is_immune_to_artifact_swap(self, tmp_path):
        """A deploy that rewrites the artifact file while an engine is
        live must never decode wire indices against the wrong
        database.  The pool boots from a shared-memory image captured
        at spawn (see repro.pipeline.shm), so a warm pool cannot even
        observe the swap — it keeps answering from the pinned startup
        artifact.  A pool spawned *after* the swap re-reads the file
        and must fail typed (the coordinator pins its fingerprint onto
        the worker bootstrap — see ShardedCorpusEstimator._worker_spec).
        """
        from repro import RecipeGenerator, ShardedCorpusEstimator
        from repro.usda.database import NutrientDatabase

        path = tmp_path / "live.artifact"
        save_artifact(path, NutritionEstimator())
        engine = ShardedCorpusEstimator(
            EstimatorSpec(artifact_path=str(path)), workers=2
        )
        recipes = RecipeGenerator().generate(4)
        first = engine.estimate_corpus(recipes)  # spawns the warm pool

        # Swap in an artifact built against a different database.
        tiny = NutrientDatabase(_tiny_database_foods())
        save_artifact(path, NutritionEstimator(database=tiny))

        # The persistent pool still holds the startup image: results
        # stay bit-identical to the pre-swap run.
        assert engine.estimate_corpus(recipes) == first

        # A fresh pool boots from the swapped file and fails typed.
        engine.close()
        with pytest.raises(ArtifactMismatchError, match="different database"):
            engine.estimate_corpus(recipes)
        engine.close()

    def test_service_engine_is_pinned_to_startup_artifact(self, tmp_path):
        """After an on-disk artifact swap, /v1/estimate and
        /v1/estimate_batch must never answer from different databases.
        The service spawns its persistent pool at startup from a
        shared-memory image of the artifact, so both paths keep
        answering from the startup database; a pool respawned after
        the swap fails typed instead of splitting the endpoints."""
        from repro.service.state import ServiceConfig, ServiceState
        from repro.usda.database import NutrientDatabase

        path = tmp_path / "service.artifact"
        save_artifact(path, NutritionEstimator())
        state = ServiceState(
            ServiceConfig(
                port=0,
                workers=2,
                spec=EstimatorSpec(artifact_path=str(path)),
            )
        )
        tiny = NutrientDatabase(_tiny_database_foods())
        save_artifact(path, NutritionEstimator(database=tiny))
        # Enough distinct lines to engage the engine pool (>= 256).
        counts = {f"{i} cups flour type{i}": 1 for i in range(300)}
        # Warm pool: batch fan-out matches the warm estimator exactly —
        # one database on both endpoints, swap notwithstanding.
        assert state._estimate_table(counts) == state._local_table(
            counts, None
        )
        # A pool respawned post-swap must fail typed, not silently
        # serve the other database.
        state.close()
        with pytest.raises(ArtifactMismatchError, match="different database"):
            state._estimate_table(counts)
        state.close()


class TestFilePermissions:
    def test_artifact_mode_follows_umask_not_mkstemp(self, tmp_path):
        """mkstemp's private 0600 must not leak through the atomic
        rename — an artifact built by a deploy user has to be readable
        by the service account."""
        import os

        umask = os.umask(0)
        os.umask(umask)
        path = tmp_path / "perms.artifact"
        save_artifact(path, NutritionEstimator())
        assert (path.stat().st_mode & 0o777) == (0o666 & ~umask)


class TestTaggerCapture:
    def test_unsupported_tagger_is_refused_at_build(self, tmp_path):
        class OpaqueTagger:
            def predict(self, tokens):
                return ["O"] * len(tokens)

        estimator = NutritionEstimator(tagger=OpaqueTagger())
        with pytest.raises(ArtifactError, match="OpaqueTagger"):
            save_artifact(tmp_path / "x.artifact", estimator)

    def test_unknown_tagger_kind_is_refused_at_load(
        self, tmp_path, artifact_path
    ):
        payload = load_artifact(artifact_path)._payload
        hacked = {**payload, "tagger": {"kind": "mystery"}}
        path = tmp_path / "mystery.artifact"
        write_artifact_bytes(path, hacked)
        with pytest.raises(ArtifactCorruptError, match="mystery"):
            load_artifact(path, cache=False).build_estimator()


class TestSpecOverrides:
    def test_spec_tagger_overrides_captured_tagger(self, artifact_path):
        class LoudTagger:
            def predict(self, tokens):
                return ["NAME"] * len(tokens)

        tagger = LoudTagger()
        spec = EstimatorSpec(
            tagger=tagger, artifact_path=str(artifact_path)
        )
        assert spec.build().tagger is tagger

    def test_spec_matcher_config_applies_to_snapshot(self, artifact_path):
        from repro.matching.matcher import MatcherConfig

        config = MatcherConfig(use_modified_jaccard=False)
        spec = EstimatorSpec(
            matcher_config=config, artifact_path=str(artifact_path)
        )
        assert spec.build().matcher.config is config

    def test_payload_round_trips_through_packing(self):
        payload = {"meta": {"x": 1}, "nested": [1, 2.5, "three", None]}
        from repro.artifacts.format import unpack_payload

        assert unpack_payload(pack_payload(payload)) == payload
