"""Table IV — ingredient and unit relations (Butter, salted).

Regenerates the paper's Table IV slice of SR's WEIGHT table, checks
the exact gram weights the paper prints, and demonstrates/benchmarks
the volume-derivation that adds the missing teaspoon ("1 teaspoon of
it is equivalent to 35 calories" — §III uses this very number as its
error yardstick).
"""

from __future__ import annotations

from conftest import write_result

from repro.eval.tables import render_table_iv
from repro.units.gram_weights import UnitResolver
from repro.usda.database import load_default_database


def test_table_iv(benchmark):
    db = load_default_database()
    table = render_table_iv(db)
    write_result("table_iv_units.txt", table)

    butter = db.get("01001")
    by_unit = {p.unit: p for p in butter.portions}
    assert by_unit['pat (1" sq, 1/3" high)'].grams == 5.0
    assert by_unit["tbsp"].grams == 14.2
    assert by_unit["cup"].grams == 227.0
    assert by_unit["stick"].grams == 113.0

    resolver = UnitResolver(butter)
    teaspoon = resolver.resolve("teaspoon")
    assert teaspoon is not None and teaspoon.method == "volume-derived"
    kcal_per_tsp = teaspoon.grams_per_unit * butter.energy_kcal / 100.0
    # Paper §III: "1 teaspoon of it is equivalent to 35 calories".
    assert 30.0 <= kcal_per_tsp <= 40.0, kcal_per_tsp

    units = ["teaspoon", "tablespoon", "cup", "stick", "pat", "ounce",
             "pound", "gram", "pint", "dash"]

    def resolve_all():
        return [resolver.resolve(u) for u in units]

    resolutions = benchmark(resolve_all)
    assert all(r is not None for r in resolutions)
