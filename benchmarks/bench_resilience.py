"""Fault-tolerance overhead and recovery cost (ISSUE 6).

Measures, on a duplication-saturated synthetic corpus:

* **supervision overhead** — the supervised engine with no faults
  injected vs the same engine's throughput baseline (the supervisor's
  polling/bookkeeping must be noise, not a tax),
* **crash recovery** — the same corpus with K worker crashes injected
  (one per collect chunk, first attempts only): wall-clock degradation
  and, critically, **result parity** — the crash run's estimates must
  be bit-identical to the clean run's,
* **poison quarantine** — one poison line injected: the run completes,
  the dead-letter report names the line, and every surviving line is
  bit-identical to a clean run over the corpus minus that line,
* **durable resume** (ISSUE 7) — the same corpus as a durable run
  (``run_dir=``): journaling overhead vs the clean run, then the
  journal truncated to half its collect frames and resumed (replay +
  re-execution, bit-identical), then a **pure replay** of the
  completed run (no chunk executed, no worker spawned) to measure the
  journal-replay floor.

Emits ``results/BENCH_resilience.json``.

Run::

    PYTHONPATH=src python -m pytest benchmarks/bench_resilience.py -q
    PYTHONPATH=src python benchmarks/bench_resilience.py   # standalone
    REPRO_BENCH_SMOKE=1 ...                                # CI smoke
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from collections import Counter
from pathlib import Path

from conftest import write_result

from repro import RecipeGenerator, ShardedCorpusEstimator
from repro.core.resolution import REASON_ESTIMATOR_ERROR
from repro.faults import ENV_VAR
from repro.recipedb.corpus import save_recipes_jsonl
from repro.recipedb.generator import GeneratorConfig
from repro.runs import RunManifest, STATUS_RUNNING
from repro.runs.journal import KIND_COLLECT, RunJournal

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
N_RECIPES = 200 if SMOKE else 4000
LINE_REUSE = 0.8
WORKERS = 2
CHUNK_SIZE = 64 if SMOKE else 256
#: Crashes injected for the recovery measurement.
N_CRASHES = 2 if SMOKE else 4


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _set_faults(spec: str | None) -> None:
    if spec is None:
        os.environ.pop(ENV_VAR, None)
    else:
        os.environ[ENV_VAR] = spec


def run_benchmark() -> dict:
    recipes = RecipeGenerator(
        config=GeneratorConfig(seed=7, line_reuse=LINE_REUSE)
    ).generate(N_RECIPES)
    n_lines = sum(len(r.ingredient_texts) for r in recipes)
    counts = dict(
        Counter(t for r in recipes for t in r.ingredient_texts)
    )
    n_chunks = -(-len(counts) // CHUNK_SIZE)

    def engine():
        return ShardedCorpusEstimator(
            workers=WORKERS, chunk_size=CHUNK_SIZE, quarantine=True
        )

    # -- clean baseline (supervised pool, no faults)
    _set_faults(None)
    clean_engine = engine()
    clean, clean_s = _timed(lambda: clean_engine.estimate_corpus(recipes))
    assert len(clean_engine.last_report.dead_letters) == 0

    # -- K crashes: one per collect chunk, first attempt only
    crash_chunks = [
        i * max(1, n_chunks // N_CRASHES) for i in range(N_CRASHES)
    ]
    crash_chunks = sorted(set(c for c in crash_chunks if c < n_chunks))
    _set_faults(";".join(f"crash@collect-chunk:{c}" for c in crash_chunks))
    crash_engine = engine()
    crashed, crash_s = _timed(lambda: crash_engine.estimate_corpus(recipes))
    crash_report = crash_engine.last_report
    _set_faults(None)

    parity = crashed == clean
    assert parity, "crash-recovery run diverged from the clean run"
    assert crash_report.worker_crashes >= len(crash_chunks)
    assert crash_report.retries >= len(crash_chunks)

    # -- one poison line: quarantined, survivors bit-identical to the
    # corpus-minus-line run
    poisoned_text = max(counts, key=len)
    reduced = {t: n for t, n in counts.items() if t != poisoned_text}
    clean_minus = engine().estimate_table(reduced)
    _set_faults(f"raise@estimate-line:{poisoned_text}")
    poison_engine = engine()
    poisoned_table, poison_s = _timed(
        lambda: poison_engine.estimate_table(dict(counts))
    )
    poison_report = poison_engine.last_report
    _set_faults(None)

    survivors_identical = all(
        poisoned_table[t] == clean_minus[t] for t in reduced
    )
    assert survivors_identical
    assert len(poison_report.dead_letters) == 1
    letter = poison_report.dead_letters.records[0]
    assert letter.reason == REASON_ESTIMATOR_ERROR
    assert poisoned_table[poisoned_text].reason == REASON_ESTIMATOR_ERROR

    # -- durable resume: journal overhead, half-journal resume, pure
    # replay (the corpus goes to disk — durable runs bind a manifest
    # to a JSONL path identity)
    with tempfile.TemporaryDirectory() as scratch:
        scratch = Path(scratch)
        corpus_path = scratch / "corpus.jsonl"
        save_recipes_jsonl(recipes, corpus_path)
        run_dir = scratch / "run-bench"

        durable_engine = ShardedCorpusEstimator(
            workers=WORKERS,
            chunk_size=CHUNK_SIZE,
            quarantine=True,
            run_dir=run_dir,
        )
        durable, durable_s = _timed(
            lambda: durable_engine.estimate_corpus(str(corpus_path))
        )
        assert durable == clean, "durable run diverged from the clean run"

        # Truncate the journal to half its collect frames — the state a
        # kill -9 at that chunk boundary leaves — and resume.
        records = RunJournal(run_dir / "journal.bin").scan().records
        n_collect = sum(1 for r in records if r.kind == KIND_COLLECT)
        cut = records[1 + n_collect // 2].offset
        manifest = RunManifest.load(run_dir)
        manifest.status = STATUS_RUNNING
        manifest.save(run_dir)
        with (run_dir / "journal.bin").open("r+b") as handle:
            handle.truncate(cut)
        resume_engine = ShardedCorpusEstimator(
            workers=WORKERS,
            chunk_size=CHUNK_SIZE,
            quarantine=True,
            run_dir=run_dir,
            resume=True,
        )
        resumed, resume_s = _timed(
            lambda: resume_engine.estimate_corpus(str(corpus_path))
        )
        resume_report = resume_engine.last_report
        assert resumed == clean, "resumed run diverged from the clean run"
        assert resume_report.replayed_chunks > 0
        assert resume_report.executed_chunks > 0

        # Pure replay of the now-complete run: every chunk from the
        # journal, zero workers spawned.
        replay_engine = ShardedCorpusEstimator(
            workers=WORKERS,
            chunk_size=CHUNK_SIZE,
            quarantine=True,
            run_dir=run_dir,
            resume=True,
        )
        replayed, replay_s = _timed(
            lambda: replay_engine.estimate_corpus(str(corpus_path))
        )
        assert replayed == clean
        assert replay_engine.last_report.executed_chunks == 0

    return {
        "benchmark": "bench_resilience",
        "smoke": SMOKE,
        "workers": WORKERS,
        "chunk_size": CHUNK_SIZE,
        "recipes": len(recipes),
        "lines": n_lines,
        "distinct_lines": len(counts),
        "chunks": n_chunks,
        "clean": {
            "seconds": round(clean_s, 3),
            "lines_per_sec": round(n_lines / clean_s),
        },
        "crash_recovery": {
            "injected_crashes": len(crash_chunks),
            "seconds": round(crash_s, 3),
            "lines_per_sec": round(n_lines / crash_s),
            "slowdown_vs_clean": round(crash_s / clean_s, 2),
            "bit_identical_to_clean": parity,
            "worker_crashes": crash_report.worker_crashes,
            "respawns": crash_report.respawns,
            "retries": crash_report.retries,
        },
        "poison_quarantine": {
            "seconds": round(poison_s, 3),
            "dead_lettered": len(poison_report.dead_letters),
            "dead_letter_reason": letter.reason,
            "survivors_bit_identical_to_corpus_minus_line": (
                survivors_identical
            ),
        },
        "durable_resume": {
            "durable_seconds": round(durable_s, 3),
            "journal_overhead_vs_clean": round(durable_s / clean_s, 2),
            "resume_seconds": round(resume_s, 3),
            "resume_replayed_chunks": resume_report.replayed_chunks,
            "resume_executed_chunks": resume_report.executed_chunks,
            "bit_identical_to_clean": resumed == clean,
            "pure_replay_seconds": round(replay_s, 3),
            "pure_replay_speedup_vs_clean": round(clean_s / replay_s, 2),
        },
    }


def test_resilience():
    report = run_benchmark()
    write_result("BENCH_resilience.json", json.dumps(report, indent=2))
    assert report["crash_recovery"]["bit_identical_to_clean"]
    assert report["crash_recovery"]["worker_crashes"] >= 1
    assert report["poison_quarantine"]["dead_lettered"] == 1
    assert report["poison_quarantine"][
        "survivors_bit_identical_to_corpus_minus_line"
    ]
    # Recovery must cost bounded extra wall-clock: each crash loses at
    # most one chunk attempt, so even a conservative bound is loose.
    assert report["crash_recovery"]["slowdown_vs_clean"] < 10
    assert report["durable_resume"]["bit_identical_to_clean"]
    assert report["durable_resume"]["resume_replayed_chunks"] > 0
    assert report["durable_resume"]["resume_executed_chunks"] > 0


if __name__ == "__main__":
    result = run_benchmark()
    path = write_result(
        "BENCH_resilience.json", json.dumps(result, indent=2)
    )
    print(json.dumps(result, indent=2))
    print(f"wrote {path}")
