"""Ablations of the design choices DESIGN.md §5 calls out.

Each ablation flips one heuristic off and measures the exact-food
match accuracy against ground truth over the most frequent
ingredient+state pairs, quantifying what every paper heuristic buys:

* modified vs vanilla Jaccard (heuristics (c)/(e), the Table III claim),
* negation rewriting (f),
* the "raw" preference (g),
* sequential-priority collision resolution (h),
* the rule-based tagger vs the trained perceptron (the NER ablation),
* lemmatizer vs aggressive stemmer (§II-B(b): "Stemmers ... were not
  found to be useful ... because of their high aggression").
"""

from __future__ import annotations

from conftest import write_result

from repro import NutritionEstimator
from repro.eval.metrics import match_accuracy
from repro.matching.matcher import MatcherConfig
from repro.ner.rule_tagger import RuleBasedTagger
from repro.text.lemmatizer import lemmatize


def _accuracy(corpus, tagger, config) -> float:
    estimator = NutritionEstimator(tagger=tagger, matcher_config=config)
    estimates = estimator.estimate_corpus(corpus, passes=1)
    return match_accuracy(corpus, estimates).exact_accuracy


def test_matching_ablations(benchmark, corpus, trained_tagger):
    sample = corpus[:400]
    configs = {
        "full protocol": MatcherConfig(),
        "vanilla Jaccard (no (e))": MatcherConfig(use_modified_jaccard=False),
        "no negation rewriting (no (f))": MatcherConfig(rewrite_negations=False),
        "no raw preference (no (g))": MatcherConfig(raw_bonus=False),
        "no priority tie-break (no (h))": MatcherConfig(priority_tiebreak=False),
    }
    scores = {
        name: _accuracy(sample, trained_tagger, config)
        for name, config in configs.items()
    }
    scores["rule-based NER (no trained tagger)"] = _accuracy(
        sample, RuleBasedTagger(), MatcherConfig()
    )

    lines = ["exact-food match accuracy vs ground truth (ablations):", ""]
    for name, score in scores.items():
        delta = score - scores["full protocol"]
        lines.append(f"  {name:38} {100 * score:6.2f}%  ({100 * delta:+.2f} pts)")
    write_result("ablations.txt", "\n".join(lines))

    full = scores["full protocol"]
    assert full >= scores["vanilla Jaccard (no (e))"] - 1e-9
    assert full >= scores["no priority tie-break (no (h))"] - 1e-9
    # The raw preference is a tie-break whose value is case-specific
    # ("fava beans", "whole eggs"); aggregate accuracy may move a hair
    # in either direction, but never by much.
    assert abs(full - scores["no raw preference (no (g))"]) < 0.02

    tiny = sample[:40]
    result = benchmark(
        lambda: _accuracy(tiny, trained_tagger, MatcherConfig())
    )
    assert 0.0 <= result <= 1.0


def test_lemmatizer_vs_stemmer():
    """§II-B(b): stemmers are too aggressive for description matching.

    A Porter-style aggressive suffix stripper mangles exactly the
    vocabulary the matcher needs; the lemmatizer does not.
    """

    def aggressive_stem(word: str) -> str:
        for suffix in ("ies", "es", "s", "ed", "ing", "er", "y"):
            if word.endswith(suffix) and len(word) > len(suffix) + 2:
                return word[: -len(suffix)]
        return word

    vocabulary = ["berries", "cherries", "tomatoes", "apples", "slices"]
    lemmas = [lemmatize(w) for w in vocabulary]
    stems = [aggressive_stem(w) for w in vocabulary]
    assert lemmas == ["berry", "cherry", "tomato", "apple", "slice"]
    # The stemmer corrupts forms the USDA descriptions actually use.
    assert "berri" in stems or "cherri" in stems
    assert all(lemma.isalpha() for lemma in lemmas)
