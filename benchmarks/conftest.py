"""Shared fixtures for the benchmark harness.

Expensive artifacts (corpus, estimates, trained tagger) are built once
per session.  Every benchmark writes its reproduced table/figure to
``results/`` so the artifacts survive pytest's output capture.

**Smoke quarantine:** the committed ``results/BENCH_*.json`` files are
the per-revision source of truth quoted by ``docs/performance.md``.
CI smoke runs (``REPRO_BENCH_SMOKE=1``) produce much smaller-scale
numbers, so :func:`write_result` diverts them to ``results/smoke/``
(git-ignored) — a smoke run can never overwrite a committed full-mode
artifact (``tests/test_bench_smoke_guard.py``).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import NutritionEstimator, RecipeGenerator
from repro.ner import AveragedPerceptronTagger
from repro.recipedb.generator import GeneratorConfig
from repro.utils import atomic_write_text

#: Corpus scale; override with REPRO_BENCH_RECIPES for bigger runs.
N_RECIPES = int(os.environ.get("REPRO_BENCH_RECIPES", "1200"))

#: Pinned sharded-engine shape for every benchmark that spins up
#: :class:`repro.pipeline.ShardedCorpusEstimator`.  Both knobs are
#: explicit (never the engine's defaults) and recorded in the emitted
#: report, so a committed series and a CI smoke series are always
#: comparable run-to-run: a default drifting in the engine can never
#: silently re-shape the benchmark.
BENCH_CHUNK_SIZE = int(os.environ.get("REPRO_BENCH_CHUNK_SIZE", "256"))
#: Worker counts for scaling series — identical in smoke and full
#: mode.  Counts above the host's core count are still measured (the
#: oversubscription trajectory is worth tracking) but exempt from the
#: non-regression gate; see ``bench_throughput.py``.
BENCH_WORKER_COUNTS: tuple[int, ...] = tuple(
    int(w)
    for w in os.environ.get("REPRO_BENCH_WORKERS", "1,2,4").split(",")
    if w.strip()
)

#: High-reuse Zipf corpus shape, per mode: ``(recipes, line_reuse)``
#: tuned so the distinct/total line ratio lands near 0.15 — the
#: scraped-corpus regime (RecipeDB/AllRecipes repeat "1 teaspoon
#: salt" thousands of times) that coordinator-side duplicate collapse
#: targets.  The achieved ratio is recorded in the emitted report.
HIGH_REUSE_SMOKE_SHAPE = (600, 0.87)
HIGH_REUSE_FULL_SHAPE = (2500, 0.84)

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
#: Subdirectory (under the results dir) that quarantines smoke output.
SMOKE_SUBDIR = "smoke"


def results_dir() -> Path:
    """Where this run's artifacts belong (mode is read per call)."""
    if os.environ.get("REPRO_BENCH_SMOKE", "") == "1":
        return RESULTS_DIR / SMOKE_SUBDIR
    return RESULTS_DIR


def write_result(name: str, content: str) -> Path:
    """Persist a reproduced artifact under the mode's results dir.

    Written atomically (one shared fsync-aware path,
    :func:`repro.utils.atomic_write_text`) so an interrupted benchmark
    run can never leave a half-written committed artifact behind.
    """
    directory = results_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / name
    atomic_write_text(path, content + "\n")
    return path


def high_reuse_corpus():
    """The high-reuse Zipf corpus for the mode in effect (see
    :data:`HIGH_REUSE_SMOKE_SHAPE`).  A plain function, not a
    fixture, so standalone ``python benchmarks/bench_*.py`` runs can
    call it too."""
    n_recipes, line_reuse = (
        HIGH_REUSE_SMOKE_SHAPE
        if os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
        else HIGH_REUSE_FULL_SHAPE
    )
    return RecipeGenerator(
        config=GeneratorConfig(seed=13, line_reuse=line_reuse)
    ).generate(n_recipes)


@pytest.fixture(scope="session")
def generator() -> RecipeGenerator:
    return RecipeGenerator()


@pytest.fixture(scope="session")
def corpus(generator):
    return generator.generate(N_RECIPES)


@pytest.fixture(scope="session")
def trained_tagger(generator) -> AveragedPerceptronTagger:
    """Perceptron trained on a generated annotation corpus."""
    phrases = [item.tagged for item in generator.generate_phrases(3000)]
    tagger = AveragedPerceptronTagger()
    tagger.train(phrases, epochs=5)
    return tagger


@pytest.fixture(scope="session")
def estimator(trained_tagger) -> NutritionEstimator:
    """Pipeline with the trained NER tagger (the paper's configuration)."""
    return NutritionEstimator(tagger=trained_tagger)


@pytest.fixture(scope="session")
def corpus_estimates(estimator, corpus):
    return estimator.estimate_corpus(corpus)
