"""Shared fixtures for the benchmark harness.

Expensive artifacts (corpus, estimates, trained tagger) are built once
per session.  Every benchmark writes its reproduced table/figure to
``results/`` so the artifacts survive pytest's output capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import NutritionEstimator, RecipeGenerator
from repro.ner import AveragedPerceptronTagger

#: Corpus scale; override with REPRO_BENCH_RECIPES for bigger runs.
N_RECIPES = int(os.environ.get("REPRO_BENCH_RECIPES", "1200"))

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def write_result(name: str, content: str) -> Path:
    """Persist a reproduced artifact under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(content + "\n", encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def generator() -> RecipeGenerator:
    return RecipeGenerator()


@pytest.fixture(scope="session")
def corpus(generator):
    return generator.generate(N_RECIPES)


@pytest.fixture(scope="session")
def trained_tagger(generator) -> AveragedPerceptronTagger:
    """Perceptron trained on a generated annotation corpus."""
    phrases = [item.tagged for item in generator.generate_phrases(3000)]
    tagger = AveragedPerceptronTagger()
    tagger.train(phrases, epochs=5)
    return tagger


@pytest.fixture(scope="session")
def estimator(trained_tagger) -> NutritionEstimator:
    """Pipeline with the trained NER tagger (the paper's configuration)."""
    return NutritionEstimator(tagger=trained_tagger)


@pytest.fixture(scope="session")
def corpus_estimates(estimator, corpus):
    return estimator.estimate_corpus(corpus)
