"""Table III — modified vs vanilla Jaccard inferences.

Part 1 regenerates Table III: our matches under both metrics for the
paper's ten probe phrases, annotated with agreement against the
paper's modified-JI column.

Part 2 reproduces the §II-B(e) claim that the two metrics disagree on
a substantial minority of sampled phrases (paper: 227/1000 on the full
SR corpus) and asserts the modified metric prefers longer (more
detailed) descriptions on the divergent set.
"""

from __future__ import annotations

import random

from conftest import write_result

from repro.eval.metrics import metric_divergence
from repro.eval.tables import render_table_iii
from repro.matching.matcher import DescriptionMatcher, MatcherConfig
from repro.recipedb.ingredients import INGREDIENTS
from repro.usda.database import load_default_database


def _sampled_queries(n: int, seed: int = 5) -> list[tuple[str, str]]:
    rng = random.Random(seed)
    queries = []
    for _ in range(n):
        spec = rng.choice(INGREDIENTS)
        name = rng.choice(spec.names)
        state = rng.choice(spec.states) if spec.states else ""
        queries.append((name, state))
    return queries


def test_table_iii(benchmark):
    db = load_default_database()
    table = render_table_iii(db)

    modified = DescriptionMatcher(db, MatcherConfig(use_modified_jaccard=True))
    vanilla = DescriptionMatcher(db, MatcherConfig(use_modified_jaccard=False))

    # Paper-exact expectations reproducible on the curated corpus: the
    # modified metric must find these Table III matches.
    must_match = {
        ("red lentils", ""): "Lentils, pink or red, raw",
        ("coriander", "ground"): "Coriander (cilantro) leaves, raw",
        ("tomato paste", ""): "Tomato products, canned, paste, without salt added",
        ("vegetable broth", ""): "Soup, vegetable with beef broth, canned, condensed",
        ("fava beans", ""): "Broadbeans (fava beans), mature seeds, raw",
        ("cayenne pepper", "ground"): "Spices, pepper, red or cayenne",
        ("chicken with giblets", "patted dry and quartered"):
            "Chicken, broilers or fryers, meat and skin and giblets and neck, raw",
    }
    for (name, state), expected in must_match.items():
        got = modified.match(name, state)
        assert got is not None and got.description == expected, (
            name, state, got.description if got else None, expected)

    # Part 2: divergence rate over sampled queries.
    queries = _sampled_queries(1000)
    differing, total = metric_divergence(modified, vanilla, queries)
    rate = differing / total

    # Of the divergent queries, the modified metric should prefer the
    # longer (more detailed) description most of the time — the bias
    # the paper's §II-B(e) documents.
    longer = shorter = 0
    for name, state in queries:
        a = modified.match(name, state)
        b = vanilla.match(name, state)
        if a and b and a.food.ndb_no != b.food.ndb_no:
            if len(a.description) > len(b.description):
                longer += 1
            elif len(a.description) < len(b.description):
                shorter += 1

    lines = [
        table,
        "",
        f"metric divergence: {differing}/{total} sampled queries "
        f"({100 * rate:.1f}%) match different foods under J vs J* "
        "(paper: 227/1000 = 22.7% on the full ~8k-food SR corpus)",
        f"on divergent queries the modified metric picked the longer "
        f"description {longer}x vs {shorter}x",
    ]
    write_result("table_iii_jaccard.txt", "\n".join(lines))

    assert differing > 0, "metrics never diverged — modified JI is inert"
    assert longer >= shorter, (
        "modified JI should prefer detailed descriptions on divergence"
    )

    names = [q for q in queries[:200]]

    def match_all():
        fresh = DescriptionMatcher(db)  # uncached matcher
        return [fresh.match(n, s) for n, s in names]

    matched = benchmark(match_all)
    assert sum(1 for m in matched if m is not None) > 0
