"""Cold start: artifact load vs full build — the PR 4 tentpole benchmark.

Measures, in **fresh subprocesses** (so module caches, the lru-cached
default database and the artifact payload cache cannot leak between
modes), the wall time from process start to a ready estimator that
has answered one request:

* **default configuration** (embedded USDA-SR, rule tagger): the full
  build path — ``repro.usda.data`` import, description lemmatization,
  inverted-index build — against loading the same state from a
  build-once artifact (:mod:`repro.artifacts`),
* **paper configuration** (trained averaged perceptron): the build
  path additionally trains the tagger from generated phrases — the
  cost every worker and every service restart would pay without the
  artifact — against loading the captured weight matrix.

Two spans are recorded per run: ``import_s`` (interpreter imports) and
``ready_s`` (build-or-load plus one warm-up estimate); speedups are
reported for both the ready span and the whole process.  The ≥ 5x
acceptance floor applies to the **paper configuration** — its build
path constructs the perceptron weight matrix from sources, which is
precisely the state the artifact exists to capture (measured ≥ 100x
on the ready span, ≥ 15x whole-process).  The default rule-tagger
build is only ~20 ms and shares ~10 ms of one-time process costs
(regex compilation, unit tables, the warm-up estimate itself) with
the load path, so its ratio is structurally modest; it carries a
no-regression floor instead.

Emits ``results/BENCH_coldstart.json`` (``results/smoke/`` in smoke
mode — see ``benchmarks/conftest.py``).

Run::

    PYTHONPATH=src python -m pytest benchmarks/bench_coldstart.py -q
    PYTHONPATH=src python benchmarks/bench_coldstart.py   # standalone
    REPRO_BENCH_SMOKE=1 ...                               # CI smoke
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

from conftest import write_result

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

#: Subprocess repetitions per mode (best-of, to shed scheduler noise).
REPEATS = 2 if SMOKE else 4
#: Perceptron training scale for the paper configuration.
TRAIN_PHRASES = 800 if SMOKE else 3000
TRAIN_EPOCHS = 2 if SMOKE else 5
#: Acceptance floor (ISSUE 4): artifact load ≥ 5x faster than the
#: full paper-configuration build, on both spans.
MIN_PERCEPTRON_SPEEDUP = 5.0
#: The rule-tagger build is ~20 ms; the artifact must simply never be
#: slower than the build it replaces (0.9 absorbs scheduler noise).
MIN_DEFAULT_SPEEDUP = 0.9

_SRC = str(Path(__file__).resolve().parent.parent / "src")

#: The measured child: stamps perf_counter at entry, after imports,
#: and after the estimator has produced one estimate.  ``MODE`` is
#: "build" / "load"; "build" with TRAIN > 0 trains the perceptron —
#: exactly what a worker process without an artifact would do.
_CHILD = """
import time
T0 = time.perf_counter()
import json, os, sys
from repro.pipeline.spec import EstimatorSpec
T_IMPORT = time.perf_counter()

mode = os.environ["REPRO_COLDSTART_MODE"]
train = int(os.environ.get("REPRO_COLDSTART_TRAIN", "0"))
artifact = os.environ.get("REPRO_COLDSTART_ARTIFACT", "")

if mode == "load":
    spec = EstimatorSpec(artifact_path=artifact)
    estimator = spec.build()
else:
    tagger = None
    if train:
        from repro.ner.perceptron import AveragedPerceptronTagger
        from repro.recipedb.generator import GeneratorConfig, RecipeGenerator
        generator = RecipeGenerator(config=GeneratorConfig(seed=13))
        phrases = [i.tagged for i in generator.generate_phrases(train)]
        tagger = AveragedPerceptronTagger()
        tagger.train(phrases, epochs=int(os.environ["REPRO_COLDSTART_EPOCHS"]))
    spec = EstimatorSpec(tagger=tagger)
    estimator = spec.build()

estimate = estimator.estimate_ingredient("2 cups all-purpose flour")
assert estimate.grams > 0, estimate
T_READY = time.perf_counter()
print(json.dumps({
    "import_s": T_IMPORT - T0,
    "ready_s": T_READY - T_IMPORT,
    "total_s": T_READY - T0,
}))
"""


def _run_child(mode: str, artifact: str = "", train: int = 0) -> dict:
    """Best-of-REPEATS timing of one cold-start mode."""
    env = {
        **os.environ,
        "PYTHONPATH": _SRC,
        "REPRO_COLDSTART_MODE": mode,
        "REPRO_COLDSTART_ARTIFACT": artifact,
        "REPRO_COLDSTART_TRAIN": str(train),
        "REPRO_COLDSTART_EPOCHS": str(TRAIN_EPOCHS),
    }
    best: dict | None = None
    for _ in range(REPEATS):
        out = subprocess.run(
            [sys.executable, "-c", _CHILD],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        sample = json.loads(out.splitlines()[-1])
        if best is None or sample["total_s"] < best["total_s"]:
            best = sample
    return {key: round(value, 4) for key, value in best.items()}


def _build_artifacts(directory: Path) -> tuple[str, str]:
    """Write default- and paper-configuration artifacts; return paths."""
    from repro import NutritionEstimator
    from repro.artifacts import save_artifact
    from repro.ner.perceptron import AveragedPerceptronTagger
    from repro.recipedb.generator import GeneratorConfig, RecipeGenerator

    default_path = directory / "default.artifact"
    save_artifact(default_path, NutritionEstimator())

    generator = RecipeGenerator(config=GeneratorConfig(seed=13))
    phrases = [i.tagged for i in generator.generate_phrases(TRAIN_PHRASES)]
    tagger = AveragedPerceptronTagger()
    tagger.train(phrases, epochs=TRAIN_EPOCHS)
    perceptron_path = directory / "perceptron.artifact"
    save_artifact(perceptron_path, NutritionEstimator(tagger=tagger))
    return str(default_path), str(perceptron_path)


def _series(name: str, build: dict, load: dict, artifact: str) -> dict:
    return {
        "configuration": name,
        "artifact_bytes": os.path.getsize(artifact),
        "build": build,
        "load": load,
        "ready_speedup": round(build["ready_s"] / load["ready_s"], 2),
        "total_speedup": round(build["total_s"] / load["total_s"], 2),
    }


def run_benchmark() -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-coldstart-") as tmp:
        default_artifact, perceptron_artifact = _build_artifacts(Path(tmp))
        default = _series(
            "default (rule tagger)",
            _run_child("build"),
            _run_child("load", artifact=default_artifact),
            default_artifact,
        )
        perceptron = _series(
            "paper (trained perceptron)",
            _run_child("build", train=TRAIN_PHRASES),
            _run_child("load", artifact=perceptron_artifact),
            perceptron_artifact,
        )
    return {
        "benchmark": "bench_coldstart",
        "smoke": SMOKE,
        "repeats_best_of": REPEATS,
        "train_phrases": TRAIN_PHRASES,
        "train_epochs": TRAIN_EPOCHS,
        "floors": {
            "default_ready_speedup": MIN_DEFAULT_SPEEDUP,
            "perceptron_ready_speedup": MIN_PERCEPTRON_SPEEDUP,
        },
        "series": [default, perceptron],
    }


def test_coldstart():
    report = run_benchmark()
    write_result("BENCH_coldstart.json", json.dumps(report, indent=2))
    default, perceptron = report["series"]
    if not SMOKE:
        # Two ~20 ms spans at best-of-2 are scheduler-noise territory;
        # the no-regression floor only means something at full repeats.
        assert default["ready_speedup"] >= MIN_DEFAULT_SPEEDUP, default
    assert perceptron["ready_speedup"] >= MIN_PERCEPTRON_SPEEDUP, perceptron
    if not SMOKE:
        # Smoke trains a deliberately tiny perceptron, so only the
        # full-scale run can hold the whole-process floor too.
        assert perceptron["total_speedup"] >= MIN_PERCEPTRON_SPEEDUP, (
            perceptron
        )
    # The artifact's point: a loaded process is ready in well under
    # the time the paper-configuration build spends training alone.
    assert perceptron["load"]["ready_s"] < perceptron["build"]["ready_s"]


if __name__ == "__main__":
    result = run_benchmark()
    path = write_result("BENCH_coldstart.json", json.dumps(result, indent=2))
    print(json.dumps(result, indent=2))
    print(f"wrote {path}")
