"""Matcher/estimation throughput — the perf tentpole benchmarks.

Measures, on synthetic recipe corpora of 100 / 1,000 / 10,000
ingredient lines (100 only in smoke mode):

* matcher construction time (description preprocessing + index build),
* uncached single-line match throughput through the inverted index
  (PR 1), against a faithful reimplementation of the seed O(|DB|)
  linear scan — the speedup denominator,
* end-to-end batch estimation throughput (``estimate_recipes``,
  two passes, shared parse/match caches),
* **worker scaling** (PR 2, reshaped by ISSUE 9): the sharded
  two-phase corpus engine at 1 / 2 / 4 workers on a large
  duplication-saturated corpus — pinned chunk size, warm pool,
  ``force_pool=True`` so every count pays the same pool cost — in
  *two* recorded series, the columnar hot path and the
  ``REPRO_COLUMNAR=0`` per-line oracle.  Floors: >= 2x the
  single-process batch path at the top worker count, single-process
  columnar table >= 1.5x per-line, and a monotonic non-regression
  gate (N workers >= 0.9x the best smaller count, up to the host's
  core count) that also runs in CI smoke mode,
* **duplicate collapse** (ISSUE 10): the two-phase engine with
  coordinator-side duplicate collapse vs the ``dedup=False``
  per-occurrence oracle on the high-reuse Zipf corpus
  (distinct/total ≈ 0.15), outputs asserted equal, floor >= 2x —
  enforced in smoke mode too,
* **perceptron emissions** (PR 2): the vectorized interned-feature
  emission path against the dict-based reference loop.

Emits ``results/BENCH_throughput.json`` so the perf trajectory is
tracked from PR 1 onward.

Run::

    PYTHONPATH=src python -m pytest benchmarks/bench_throughput.py -q
    PYTHONPATH=src python benchmarks/bench_throughput.py   # standalone
    REPRO_BENCH_SMOKE=1 ...                                # CI smoke
    REPRO_BENCH_WORKERS=1,2 ...                            # scaling series
"""

from __future__ import annotations

import json
import os
import statistics
import time

from conftest import (
    BENCH_CHUNK_SIZE,
    BENCH_WORKER_COUNTS,
    high_reuse_corpus,
    write_result,
)

from repro import (
    NutritionEstimator,
    RecipeGenerator,
    ShardedCorpusEstimator,
    load_default_database,
)
from repro.matching.jaccard import modified_jaccard, vanilla_jaccard
from repro.matching.matcher import DescriptionMatcher, MatcherConfig
from repro.matching.preprocess import preprocess_description, preprocess_words
from repro.matching.types import MatchResult
from repro.ner import AveragedPerceptronTagger
from repro.ner.features import extract_features
from repro.recipedb.generator import GeneratorConfig
from repro.text.lemmatizer import WordNetStyleLemmatizer

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
SCALES: tuple[int, ...] = (100,) if SMOKE else (100, 1000, 10000)
#: Acceptance floor for indexed vs. linear uncached matching.
MIN_SPEEDUP = 2.0 if SMOKE else 5.0

#: Worker counts for the sharded-engine scaling series — pinned in
#: ``conftest`` (identical in smoke and full mode) so the recorded
#: series stay comparable across revisions.
WORKER_COUNTS: tuple[int, ...] = BENCH_WORKER_COUNTS
#: Corpus shape for the scaling series.  ``line_reuse`` gives the
#: corpus the Zipf-style verbatim-line duplication of scraped corpora
#: (RecipeDB/AllRecipes repeat "1 teaspoon salt" thousands of times) —
#: precisely the workload the two-phase distinct-line protocol exists
#: for; the duplication factor achieved is recorded in the report.
SCALING_RECIPES = 400 if SMOKE else 12000
SCALING_LINE_REUSE = 0.8
#: Acceptance floor: top-worker-count engine vs the single-process
#: batch path.  Only enforced in full mode — the smoke corpus is too
#: small to amortize pool startup and IPC.
MIN_WORKER_SPEEDUP = 2.0
#: Acceptance floor: single-process columnar two-phase table vs the
#: per-line reference on the same corpus, under the paper's
#: trained-perceptron configuration (full mode only; the smoke
#: corpus is too small for stable stage timings).
MIN_COLUMNAR_SPEEDUP = 1.5
#: Acceptance floor: two-phase engine with coordinator-side duplicate
#: collapse vs the ``dedup=False`` per-occurrence oracle on the
#: high-reuse Zipf corpus (distinct/total ≈ 0.15).  Enforced in smoke
#: mode too — the win is per-line work skipped, which does not need a
#: large corpus to show.
MIN_DEDUP_SPEEDUP = 2.0
#: Worker-scaling non-regression gate: adding workers may never cost
#: more than this fraction of the best smaller-count throughput.
#: Enforced in smoke mode too (the CI job fails on a violation), but
#: only for counts the host can actually run in parallel — entries
#: with ``workers > host_cores`` measure oversubscription, not
#: scaling, and are recorded without being gated.
SCALING_REGRESSION_FLOOR = 0.9


class SeedLinearMatcher:
    """The seed matcher's per-query O(|DB|) scan, cost-faithfully.

    No lemma memoization, a fresh set intersection per description —
    exactly the work profile the inverted index replaced (seed
    baseline: ~0.18 ms/line on the embedded 338-food database).
    """

    def __init__(self, db, config: MatcherConfig | None = None):
        self.config = config or MatcherConfig()
        self.lemmatizer = WordNetStyleLemmatizer(db.vocabulary())
        self.foods = list(db)
        self.descriptions = [
            preprocess_description(f.description, self.lemmatizer)
            for f in db
        ]

    def match(self, name, state="", temperature="", dry_fresh=""):
        parts = " ".join(
            p for p in (name, state, temperature, dry_fresh) if p
        )
        query = frozenset(preprocess_words(parts, self.lemmatizer))
        if not query:
            return None
        raw_pref = self.config.raw_bonus and not state.strip()
        name_words = frozenset(preprocess_words(name, self.lemmatizer))
        best: MatchResult | None = None
        for index, (food, desc) in enumerate(
            zip(self.foods, self.descriptions)
        ):
            matched = query & desc.words
            if not matched:
                continue
            if name_words and not (matched & name_words):
                continue
            if self.config.use_modified_jaccard:
                score = modified_jaccard(query, desc.words)
            else:
                score = vanilla_jaccard(query, desc.words)
            if score < self.config.min_score:
                continue
            candidate = MatchResult(
                food=food,
                score=score,
                priority=sum(desc.term_priority[w] for w in matched)
                / len(matched),
                db_index=index,
                query_words=query,
                matched_words=frozenset(matched),
                raw_added=raw_pref and desc.has_raw,
            )
            if best is None or self._better(candidate, best):
                best = candidate
        return best

    def _better(self, a, b):
        if a.score != b.score:
            return a.score > b.score
        if self.config.priority_tiebreak and a.priority != b.priority:
            return a.priority < b.priority
        if a.raw_added != b.raw_added:
            return a.raw_added
        return a.db_index < b.db_index


def _corpus_lines(n_lines: int):
    """(recipes, parsed query tuples) totalling exactly *n_lines*."""
    generator = RecipeGenerator(config=GeneratorConfig(seed=7))
    recipes = []
    lines: list[str] = []
    while len(lines) < n_lines:
        for recipe in generator.generate(max(8, n_lines // 6)):
            recipes.append(recipe)
            lines.extend(recipe.ingredient_texts)
            if len(lines) >= n_lines:
                break
    lines = lines[:n_lines]
    parser = NutritionEstimator()
    queries = []
    for text in lines:
        parsed = parser.parse(text)
        queries.append(
            (parsed.name, parsed.state, parsed.temperature, parsed.dry_fresh)
        )
    return recipes, queries


def _best_of(repeats: int, fn) -> float:
    """Fastest wall time of *repeats* runs of fn() (seconds)."""
    return min(_timed(fn) for _ in range(repeats))


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def bench_worker_scaling() -> dict:
    """Sharded corpus engine at several worker counts, columnar and
    per-line, vs the single-process paths on the same corpus.

    Every engine run is shaped identically — pinned chunk size, a
    warm pool (``ensure_pool()`` before the clock starts, and
    ``force_pool=True`` so ``workers=1`` pays the same pool/IPC cost
    as the multi-worker entries instead of taking the in-process
    shortcut) — so the series measures *scaling*, not pool startup.
    Both the columnar hot path and the ``REPRO_COLUMNAR=0`` per-line
    oracle are recorded: the oracle series is the regression
    reference proving the columnar win survives the pool."""
    generator = RecipeGenerator(
        config=GeneratorConfig(seed=7, line_reuse=SCALING_LINE_REUSE)
    )
    recipes = generator.generate(SCALING_RECIPES)
    n_lines = sum(len(r.ingredient_texts) for r in recipes)
    counts: dict[str, int] = {}
    for recipe in recipes:
        for text in recipe.ingredient_texts:
            counts[text] = counts.get(text, 0) + 1

    batch_s = _timed(
        lambda: NutritionEstimator().estimate_recipes(recipes, passes=2)
    )
    batch_rate = n_lines / batch_s

    # Single-process two-phase table: per-line oracle vs columnar,
    # under both taggers.  The trained perceptron is the paper's
    # configuration and carries the acceptance floor — its batched
    # Viterbi path is where the columnar restructure pays most; the
    # rule-tagger pair is recorded as the lower-bound trajectory.
    n_train, epochs = (150, 2) if SMOKE else (600, 4)
    phrases = [
        i.tagged
        for i in RecipeGenerator(
            config=GeneratorConfig(seed=3)
        ).generate_phrases(n_train)
    ]
    perceptron = AveragedPerceptronTagger()
    perceptron.train(phrases, epochs=epochs)

    def table_pair(tagger) -> dict:
        per_line_s = _best_of(
            2,
            lambda: NutritionEstimator(
                tagger=tagger
            ).corpus_estimate_table(counts),
        )
        columnar_s = _best_of(
            2,
            lambda: NutritionEstimator(tagger=tagger).corpus_estimate_table(
                counts, columnar=True
            ),
        )
        return {
            "per_line_lines_per_sec": round(n_lines / per_line_s),
            "columnar_lines_per_sec": round(n_lines / columnar_s),
            "columnar_speedup": round(per_line_s / columnar_s, 2),
        }

    def engine_series(columnar: bool) -> list[dict]:
        series = []
        saved = os.environ.get("REPRO_COLUMNAR")
        os.environ["REPRO_COLUMNAR"] = "1" if columnar else "0"
        try:
            for workers in WORKER_COUNTS:
                with ShardedCorpusEstimator(
                    workers=workers,
                    chunk_size=BENCH_CHUNK_SIZE,
                    force_pool=True,
                ) as engine:
                    engine.ensure_pool()
                    elapsed = _timed(
                        lambda: engine.estimate_corpus(recipes)
                    )
                rate = n_lines / elapsed
                series.append({
                    "workers": workers,
                    "corpus_lines_per_sec": round(rate),
                    "speedup_vs_single_process_batch": round(
                        rate / batch_rate, 2
                    ),
                })
        finally:
            if saved is None:
                os.environ.pop("REPRO_COLUMNAR", None)
            else:
                os.environ["REPRO_COLUMNAR"] = saved
        return series

    return {
        "recipes": len(recipes),
        "lines": n_lines,
        "distinct_lines": len(counts),
        "line_reuse": SCALING_LINE_REUSE,
        "duplication_factor": round(n_lines / len(counts), 2),
        "chunk_size": BENCH_CHUNK_SIZE,
        "host_cores": os.cpu_count() or 1,
        "single_process_batch_lines_per_sec": round(batch_rate),
        "single_process_table": {
            "rule_tagger": table_pair(None),
            "perceptron": table_pair(perceptron),
        },
        "series_per_line": engine_series(columnar=False),
        "series_columnar": engine_series(columnar=True),
    }


def assert_scaling_non_regression(series: list[dict], cores: int) -> None:
    """N workers must hold >= ``SCALING_REGRESSION_FLOOR`` x the best
    smaller-count throughput, for every count the host can schedule
    in parallel (oversubscribed counts are recorded, not gated)."""
    best_so_far = 0.0
    for entry in series:
        rate = entry["corpus_lines_per_sec"]
        if entry["workers"] <= cores and best_so_far:
            assert rate >= SCALING_REGRESSION_FLOOR * best_so_far, (
                f"workers={entry['workers']} regressed: {rate} < "
                f"{SCALING_REGRESSION_FLOOR} x best {best_so_far}",
                series,
            )
        best_so_far = max(best_so_far, rate)


def bench_dedup_collapse() -> dict:
    """Duplicate collapse vs the per-occurrence oracle (ISSUE 10).

    Both runs are the identical single-process two-phase engine on the
    high-reuse Zipf corpus; only coordinator-side duplicate collapse
    differs.  Each engine is warmed with one untimed pass first (the
    same convention as the pool series' ``ensure_pool``) so the series
    measures collapse, not estimator cold start — the memo caches are
    equally warm in both modes.  The outputs are asserted equal — the
    speedup is pure skipped work, never changed results."""
    recipes = high_reuse_corpus()
    n_lines = sum(len(r.ingredient_texts) for r in recipes)
    distinct = len({t for r in recipes for t in r.ingredient_texts})

    elapsed: dict[str, float] = {}
    estimates: dict[str, list] = {}
    for label, dedup in (("dedup", True), ("no_dedup", False)):
        engine = ShardedCorpusEstimator(workers=1, dedup=dedup)
        estimates[label] = engine.estimate_corpus(recipes)
        elapsed[label] = _best_of(
            2, lambda: engine.estimate_corpus(recipes)
        )
    # Bit-identical output is part of the measurement's contract.
    assert estimates["dedup"] == estimates["no_dedup"]
    return {
        "recipes": len(recipes),
        "lines": n_lines,
        "distinct_lines": distinct,
        "distinct_ratio": round(distinct / n_lines, 3),
        "dedup_lines_per_sec": round(n_lines / elapsed["dedup"]),
        "no_dedup_lines_per_sec": round(n_lines / elapsed["no_dedup"]),
        "dedup_speedup": round(elapsed["no_dedup"] / elapsed["dedup"], 2),
    }


def bench_perceptron_emissions() -> dict:
    """Vectorized interned-feature emissions vs the dict reference."""
    n_train, epochs, n_test = (150, 2, 60) if SMOKE else (600, 4, 300)
    generator = RecipeGenerator(config=GeneratorConfig(seed=3))
    phrases = [i.tagged for i in generator.generate_phrases(n_train)]
    tagger = AveragedPerceptronTagger()
    tagger.train(phrases, epochs=epochs)
    test = [
        i.tagged
        for i in RecipeGenerator(
            config=GeneratorConfig(seed=4)
        ).generate_phrases(n_test)
    ]
    features = [extract_features(p.tokens) for p in test]

    def run(emit):
        for feats in features:
            emit(feats)

    vec_s = _best_of(3, lambda: run(tagger._emissions))
    ref_s = _best_of(3, lambda: run(tagger._emissions_reference))
    return {
        "trained_features": len(tagger._feature_ids),
        "phrases": len(test),
        "dict_us_per_phrase": round(ref_s / len(test) * 1e6, 2),
        "vectorized_us_per_phrase": round(vec_s / len(test) * 1e6, 2),
        "speedup": round(ref_s / vec_s, 2),
    }


def run_benchmark() -> dict:
    db = load_default_database()

    build_times = [
        _timed(lambda: DescriptionMatcher(db)) for _ in range(5)
    ]
    matcher = DescriptionMatcher(db)
    linear = SeedLinearMatcher(db)

    # Dict-backed exact-description lookup roundtrip (sanity anchor).
    anchor = matcher.match("butter")
    assert db.by_description(anchor.description) is anchor.food

    report: dict = {
        "benchmark": "bench_throughput",
        "smoke": SMOKE,
        "db_foods": len(db),
        "index_vocabulary": matcher.index.vocabulary_size,
        "matcher_build_ms_median": round(
            statistics.median(build_times) * 1000, 3
        ),
        "scales": [],
    }

    for n_lines in SCALES:
        recipes, queries = _corpus_lines(n_lines)
        unique = list(dict.fromkeys(queries))

        def indexed_pass():
            matcher.clear_cache()
            for q in unique:
                matcher.match(*q)

        def linear_pass():
            for q in unique:
                linear.match(*q)

        indexed_s = _best_of(3, indexed_pass)
        linear_s = _best_of(3 if n_lines <= 1000 else 1, linear_pass)

        def batch_pass():
            NutritionEstimator().estimate_recipes(recipes, passes=2)

        batch_s = _timed(batch_pass)
        n_batch_lines = 2 * sum(len(r.ingredient_texts) for r in recipes)

        indexed_ms = indexed_s / len(unique) * 1000
        linear_ms = linear_s / len(unique) * 1000
        report["scales"].append({
            "lines": n_lines,
            "unique_queries": len(unique),
            "indexed_uncached_ms_per_line": round(indexed_ms, 5),
            "linear_uncached_ms_per_line": round(linear_ms, 5),
            "speedup": round(linear_ms / indexed_ms, 2),
            "batch_two_pass_lines_per_sec": round(
                n_batch_lines / max(batch_s, 1e-9)
            ),
        })

    # Parity spot check at the largest scale: the index must agree
    # with the seed scan on every benchmarked query (the exhaustive
    # version lives in tests/test_matching_index.py).
    matcher.clear_cache()
    for q in list(dict.fromkeys(queries))[:200]:
        fast, slow = matcher.match(*q), linear.match(*q)
        assert (fast is None) == (slow is None)
        if fast is not None:
            assert fast == slow, q

    report["worker_scaling"] = bench_worker_scaling()
    report["dedup_collapse"] = bench_dedup_collapse()
    report["perceptron_emissions"] = bench_perceptron_emissions()
    return report


def test_throughput():
    report = run_benchmark()
    write_result("BENCH_throughput.json", json.dumps(report, indent=2))
    for scale in report["scales"]:
        assert scale["speedup"] >= MIN_SPEEDUP, scale
        assert scale["batch_two_pass_lines_per_sec"] > 0
    scaling = report["worker_scaling"]
    cores = scaling["host_cores"]
    for key in ("series_per_line", "series_columnar"):
        series = scaling[key]
        assert len(series) == len(WORKER_COUNTS)
        assert all(s["corpus_lines_per_sec"] > 0 for s in series)
        # The regression gate runs in smoke mode too: the CI smoke
        # job fails the build on a scaling violation.
        assert_scaling_non_regression(series, cores)
    assert report["perceptron_emissions"]["speedup"] > 1.0
    # Duplicate-collapse floor: enforced in smoke mode too (the CI
    # smoke job fails the build if collapse stops paying).
    dedup = report["dedup_collapse"]
    assert dedup["distinct_ratio"] <= 0.25, dedup
    assert dedup["dedup_speedup"] >= MIN_DEDUP_SPEEDUP, dedup
    if not SMOKE:
        columnar = scaling["series_columnar"]
        top = max(columnar, key=lambda s: s["workers"])
        assert (
            top["speedup_vs_single_process_batch"] >= MIN_WORKER_SPEEDUP
        ), scaling
        assert (
            scaling["single_process_table"]["perceptron"]["columnar_speedup"]
            >= MIN_COLUMNAR_SPEEDUP
        ), scaling
        if cores >= top["workers"]:
            single = next(s for s in columnar if s["workers"] == 1)
            assert (
                top["corpus_lines_per_sec"]
                >= single["corpus_lines_per_sec"]
            ), scaling


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        default=None,
        help="comma-separated worker counts for the scaling series "
             "(overrides REPRO_BENCH_WORKERS)",
    )
    cli_args = parser.parse_args()
    if cli_args.workers:
        WORKER_COUNTS = tuple(
            int(w) for w in cli_args.workers.split(",") if w.strip()
        )
    result = run_benchmark()
    path = write_result("BENCH_throughput.json", json.dumps(result, indent=2))
    print(json.dumps(result, indent=2))
    print(f"wrote {path}")
