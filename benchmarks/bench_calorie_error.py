"""§III headline — average per-serving calorie error (paper: 36.42 kcal).

The paper selects recipes with 100% ingredient mapping and clean
servings (2,482 of their corpus) and compares estimated per-serving
calories against AllRecipes' third-party labels, reporting a 36.42
kcal mean absolute error — "well within our scope of error since some
calorie content would differ based on the user, cooking time and
utensils", anchored by 1 tsp butter = 35 kcal.

Here the gold labels are ground-truth calories plus the physical-
variation noise the generator injects; the same selection filter
applies, and the shape expectation is a mean error in the tens of
kcal, small relative to mean per-serving calories.
"""

from __future__ import annotations

from conftest import write_result

from repro.eval.gold import select_evaluation_recipes
from repro.eval.metrics import calorie_error_report


def test_calorie_error(benchmark, corpus, corpus_estimates):
    pairs = select_evaluation_recipes(corpus, corpus_estimates)
    report, errors = calorie_error_report(pairs)

    butter_tsp_kcal = 35.0  # the paper's §III yardstick
    within = sum(1 for e in errors if e <= butter_tsp_kcal) / len(errors)
    lines = [
        f"evaluation recipes (100% mapped, clean servings): "
        f"{report.n_recipes} of {len(corpus)} (paper: 2,482 of ~118k)",
        f"mean |error| per serving:   {report.mean_abs_error:.2f} kcal "
        "(paper: 36.42)",
        f"median |error| per serving: {report.median_abs_error:.2f} kcal",
        f"90th percentile |error|:    {report.p90_abs_error:.2f} kcal",
        f"mean signed error:          {report.mean_signed_error:+.2f} kcal",
        f"mean gold calories/serving: {report.mean_gold_calories:.1f} kcal",
        f"share of recipes within one teaspoon of butter (35 kcal): "
        f"{100 * within:.1f}%",
    ]
    write_result("calorie_error.txt", "\n".join(lines))

    # Shape: error well below typical per-serving calories, and the
    # butter-teaspoon yardstick holds for a clear majority.
    assert report.n_recipes >= 100
    assert report.mean_abs_error < 0.25 * report.mean_gold_calories
    assert within > 0.5

    sample = pairs[:400]
    result = benchmark(lambda: calorie_error_report(sample))
    assert result[0].n_recipes == len(sample)
