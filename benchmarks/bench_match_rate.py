"""§III results — ingredient match rate and match accuracy.

* Paper: "we were able to match 94.49% of the unique ingredients from
  the recipes, with the rest remaining unmapped" — the unmapped residue
  is driven by region-specific ingredients absent from USDA-SR
  ("garam masala").
* Paper: the 5,000 most frequent ingredient+state pairs were manually
  audited; 71.6% were the best available match, and the rest were
  still "one of the suitable matches".  Ground truth replaces the
  audit: exact accuracy counts matches to the generator's true food,
  suitable accuracy accepts same-leading-term foods.
"""

from __future__ import annotations

from conftest import write_result

from repro.eval.metrics import match_accuracy, unique_ingredient_match_rate


def test_match_rate_and_accuracy(benchmark, corpus, corpus_estimates):
    matched, total, rate = unique_ingredient_match_rate(corpus_estimates)
    accuracy = match_accuracy(corpus, corpus_estimates, top_n=5000)

    lines = [
        f"unique ingredient match rate: {matched}/{total} = {100 * rate:.2f}% "
        "(paper: 94.49%)",
        f"match accuracy on the {accuracy.n_pairs} most frequent "
        "ingredient+state pairs (vs ground truth; paper audited 5,000 "
        "pairs at 71.6%):",
        f"  exact-food accuracy:    {100 * accuracy.exact_accuracy:.1f}%",
        f"  suitable-match accuracy: {100 * accuracy.suitable_accuracy:.1f}%",
    ]
    write_result("match_rate.txt", "\n".join(lines))

    # Shape: high-but-not-total match rate (the unmappable residue is
    # by design), and suitable >= exact with exact in the paper's band.
    assert 0.85 <= rate < 1.0, rate
    assert accuracy.suitable_accuracy >= accuracy.exact_accuracy
    assert accuracy.exact_accuracy >= 0.55, accuracy.exact_accuracy

    sample = corpus_estimates[:600]
    result = benchmark(lambda: unique_ingredient_match_rate(sample))
    assert result[1] > 0
