"""§II-A result — NER F1 = 0.95 under 5-fold cross-validation.

Reproduces the paper's protocol: an annotation pool selected for
diversity by clustering POS tag-frequency vectors (6,612 train +
2,188 test at paper scale; scaled via REPRO_NER_POOL), 5-fold CV, and
entity-level F1.  The averaged perceptron carries the headline; the
linear-chain CRF (Stanford NER's model family) runs a single smaller
fold to confirm the same quality at higher cost.
"""

from __future__ import annotations

import os
import statistics

from conftest import write_result

from repro.ner import (
    AveragedPerceptronTagger,
    LinearChainCRF,
    evaluate,
    k_fold_cross_validation,
    select_diverse_corpus,
)
from repro.ner.corpus import TaggedPhrase
from repro.ner.rule_tagger import RuleBasedTagger
from repro.recipedb import RecipeGenerator

POOL = int(os.environ.get("REPRO_NER_POOL", "2800"))


def test_ner_f1_cross_validation(benchmark, generator: RecipeGenerator):
    items = generator.generate_phrases(POOL)
    tokens = [list(item.tagged.tokens) for item in items]
    # Paper split proportions: 6612 train / 2188 test = 75% / 25%.
    train_idx, test_idx = select_diverse_corpus(
        tokens, int(POOL * 0.6), int(POOL * 0.2)
    )
    selected = [items[i].tagged for i in train_idx + test_idx]

    def train_fold(train_split):
        tagger = AveragedPerceptronTagger()
        tagger.train(train_split, epochs=5)
        return tagger

    reports = k_fold_cross_validation(selected, train_fold, k=5)
    f1s = [r.entity_f1 for r in reports]
    mean_f1 = statistics.mean(f1s)

    # Rule-based baseline on the same pool (ablation reference).
    rule = RuleBasedTagger()
    rule_pred = [
        TaggedPhrase(p.tokens, tuple(rule.predict(p.tokens))) for p in selected
    ]
    rule_report = evaluate(selected, rule_pred)

    lines = [
        f"NER 5-fold cross-validation on {len(selected)} cluster-selected "
        "phrases (paper: 6,612 train / 2,188 test, F1 = 0.95)",
        "",
        "averaged structured perceptron:",
        *[
            f"  fold {i + 1}: token acc {r.token_accuracy:.3f}  "
            f"entity P {r.entity_precision:.3f} R {r.entity_recall:.3f} "
            f"F1 {r.entity_f1:.3f}"
            for i, r in enumerate(reports)
        ],
        f"  mean entity F1: {mean_f1:.3f}",
        "",
        f"rule-based baseline: token acc {rule_report.token_accuracy:.3f}  "
        f"entity F1 {rule_report.entity_f1:.3f}",
    ]
    write_result("ner_f1.txt", "\n".join(lines))

    assert mean_f1 >= 0.90, f"mean entity F1 {mean_f1:.3f} below paper band"
    assert mean_f1 > rule_report.entity_f1, "learned tagger must beat rules"

    train_small = selected[:600]

    def train_once():
        tagger = AveragedPerceptronTagger()
        tagger.train(train_small, epochs=3)
        return tagger

    tagger = benchmark(train_once)
    assert tagger.predict(["1", "cup", "sugar"])[0] == "QUANTITY"


def test_crf_single_fold(generator: RecipeGenerator):
    items = generator.generate_phrases(500)
    phrases = [item.tagged for item in items]
    crf = LinearChainCRF(max_iter=40)
    crf.train(phrases[:400])
    predicted = [
        TaggedPhrase(p.tokens, tuple(crf.predict(p.tokens)))
        for p in phrases[400:]
    ]
    report = evaluate(phrases[400:], predicted)
    write_result(
        "ner_crf.txt",
        f"linear-chain CRF, 400 train / 100 test: token acc "
        f"{report.token_accuracy:.3f}, entity F1 {report.entity_f1:.3f} "
        f"(converged={crf.converged}, {crf.n_features} features)",
    )
    assert report.entity_f1 >= 0.85
