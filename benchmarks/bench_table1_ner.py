"""Table I — NER tag extraction on the Piroszhki ingredient phrases.

Regenerates the paper's Table I by running the pipeline's parser on
the twelve phrases verbatim, checks the extracted entities against the
paper's columns, and benchmarks extraction throughput.
"""

from __future__ import annotations

from conftest import write_result

from repro.eval.tables import render_table_i
from repro.recipedb.phrases import PIROSZHKI_PHRASES, PIROSZHKI_TABLE_I


def test_table_i(benchmark, estimator):
    table = render_table_i(estimator)
    write_result("table_i_ner.txt", table)

    # Key Table-I fields must reproduce.
    expectations = {
        "1/2 lb lean ground beef": ("beef", "1/2", "lb"),
        "1 tablespoon fresh dill weed": ("dill weed", "1", "tablespoon"),
        "1 teaspoon salt": ("salt", "1", "teaspoon"),
        "1 egg yolk": ("egg yolk", "1", ""),
        "1 tablespoon cold water": ("cold water", "1", "tablespoon"),
    }
    for phrase, (name, quantity, unit) in expectations.items():
        parsed = estimator.parse(phrase)
        got_name = parsed.name
        if parsed.temperature:  # Table I shows "cold water" as the name
            got_name = f"{parsed.temperature} {parsed.name}"
        assert quantity == parsed.quantity, (phrase, parsed.quantity)
        assert unit == parsed.unit, (phrase, parsed.unit)
        assert name.split()[-1] in got_name, (phrase, got_name)

    def extract_all():
        return [estimator.parse(p) for p in PIROSZHKI_PHRASES]

    results = benchmark(extract_all)
    assert len(results) == len(PIROSZHKI_TABLE_I)
