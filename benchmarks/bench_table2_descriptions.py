"""Table II — example USDA-SR food descriptions.

Confirms every description the paper lists exists verbatim in the
curated database (the matching heuristics depend on their shapes) and
benchmarks database construction.
"""

from __future__ import annotations

from conftest import write_result

from repro.eval.tables import TABLE_II_DESCRIPTIONS, render_table_ii
from repro.usda.data import all_foods
from repro.usda.database import NutrientDatabase, load_default_database


def test_table_ii(benchmark):
    db = load_default_database()
    table = render_table_ii(db)
    write_result("table_ii_descriptions.txt", table)
    present = {food.description for food in db}
    missing = [d for d in TABLE_II_DESCRIPTIONS if d not in present]
    assert not missing, f"Table II descriptions missing from DB: {missing}"

    built = benchmark(lambda: NutrientDatabase(all_foods()))
    assert len(built) == len(db)
