"""Figure 2 — percentage mapping of recipes to their nutritional profile.

Regenerates both Figure-2 series over the generated corpus: the share
of each recipe's ingredients that mapped (a) to a description at all
and (b) all the way through units to a profile.  The expected shape:
the 100% bucket dominates, and the gap between the two series shows
the units problem the paper calls out.
"""

from __future__ import annotations

from conftest import write_result

from repro.core.coverage import coverage_histogram, reason_breakdown
from repro.eval.figures import figure_2


def test_figure_2_reason_breakdown(corpus_estimates):
    """Quantify Figure 2's name-vs-full gap by cause (ISSUE 5): the
    reason-code breakdown must reproduce the two series' aggregates
    exactly, and attribute every gap line to a §II-C mechanism."""
    breakdown = reason_breakdown(corpus_estimates)
    write_result("figure_2_reasons.txt", breakdown.render())

    flat = [i for e in corpus_estimates for i in e.ingredients]
    assert breakdown.total_lines == len(flat)
    assert breakdown.fully_mapped == sum(
        1 for i in flat if i.status == "matched"
    )
    assert breakdown.name_mapped == sum(
        1 for i in flat if i.status != "unmatched"
    )
    # Every fully mapped line is attributed to exactly one strategy,
    # every gap line to exactly one primary failure.
    assert sum(breakdown.resolved_by.values()) == breakdown.fully_mapped
    assert sum(breakdown.failed_by.values()) == breakdown.unit_gap
    # The generated corpus exercises several resolution strategies.
    assert len(breakdown.resolved_by) >= 3


def test_figure_2(benchmark, corpus, corpus_estimates):
    full, name, chart = figure_2(corpus_estimates)
    write_result("figure_2_coverage.txt", chart)

    # Shape assertions, not absolute numbers:
    # (1) the 100% bucket is the mode for both series,
    assert full.counts[-1] == max(full.counts)
    assert name.counts[-1] == max(name.counts)
    # (2) name-level coverage dominates full coverage (units only lose
    #     mappings, never gain them),
    assert name.counts[-1] >= full.counts[-1]
    # (3) a majority of recipes sit at >= 80% full coverage, matching
    #     the paper's "significant proportion" claim.
    high = sum(full.counts[-3:])
    assert high / full.total > 0.5

    sample = corpus_estimates[:400]
    result = benchmark(lambda: coverage_histogram(sample, "full"))
    assert result.total == len(sample)
