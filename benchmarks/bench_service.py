"""Concurrency-grade load harness for the event-loop serving tier.

The PR 3 benchmark drove one keep-alive connection against the seed
threading server; this version is the load side of the event-loop +
pre-fork rewrite.  It measures, per topology:

* **ramp** — the cached ``/v1/estimate`` workload at 1, 10 and 100
  concurrent connections (1/10/50 in smoke mode), each level reporting
  req/s and client-observed p50/p95/p99,
* **soak** — a sustained mixed workload (cached estimate + parse +
  match) at fixed concurrency for several seconds: throughput must not
  collapse and no request may fail,
* **per-endpoint series** — cached and uncached latency percentiles
  for ``/v1/estimate``, ``/v1/match`` and ``/v1/parse``,
* **batch** — one corpus-sized ``/v1/estimate_batch`` request,
* **fragment cache** (ISSUE 10) — repeated oversized batches (bodies
  past the whole-response cache's cap) with warm vs cleared
  serialized-estimate fragments; floor >= 1.2x, smoke mode included.

Two topologies run: the in-process single event loop (directly
comparable to the seed server's single-process number) and a real
``repro serve --procs 2`` subprocess, where the harness also scrapes
``/metrics`` from **each worker** (fresh connections until every
``worker_id`` answered) and aggregates the per-worker counters.

The acceptance floor: cached throughput at ``--procs 2`` must exceed
the seed threading server's best single-process number
(:data:`SEED_SINGLE_PROCESS_RPS` = 4524.6 req/s from the PR 3 run of
this benchmark).  Clients are raw sockets with pre-rendered request
bytes — ``http.client`` would bottleneck the driver long before the
server.

Run::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q
    PYTHONPATH=src python benchmarks/bench_service.py   # standalone
    REPRO_BENCH_SMOKE=1 ...                             # CI smoke
"""

from __future__ import annotations

import itertools
import json
import os
import re
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

from conftest import write_result

from repro import RecipeGenerator
from repro.recipedb.generator import GeneratorConfig
from repro.service import NutritionService, ServiceConfig
from repro.service.metrics import percentile

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

#: The seed threading server's cached req/s over one connection — the
#: best single-process number from the PR 3 benchmark.  The pre-fork
#: topology must beat it.
SEED_SINGLE_PROCESS_RPS = 4524.6

#: Recipes in the uncached series / the batch request.
N_RECIPES = 40 if SMOKE else 200
#: Distinct payloads the cached series cycles through.
N_CACHED_DISTINCT = 8
#: Ramp levels (concurrent connections) and requests per level.
RAMP_LEVELS = (
    {1: 300, 10: 600, 50: 1200} if SMOKE else {1: 2000, 10: 5000, 100: 8000}
)
#: Soak phase: concurrency and duration.
SOAK_CONNECTIONS = 8 if SMOKE else 32
SOAK_SECONDS = 2.0 if SMOKE else 6.0
#: Endpoint series length (distinct payloads are corpus-bounded).
N_ENDPOINT = 40 if SMOKE else 100

#: Floors and ceilings.  Smoke mode shares cores with the CI matrix,
#: so its bounds only catch order-of-magnitude regressions; the full
#: run enforces the seed-beating floor.
MIN_CACHED_RPS_1CONN = 300.0 if SMOKE else 1000.0
MIN_PROCS2_CACHED_RPS = 600.0 if SMOKE else SEED_SINGLE_PROCESS_RPS
MAX_CACHED_P99_MS = 500.0 if SMOKE else 250.0

#: Fragment-cache series: recipes in the repeated oversized batch
#: (big enough that the serialized body exceeds the whole-response
#: cache's 256 KB cap in both modes), and the floor for warm-fragment
#: assembly vs a cleared fragment cache — enforced in smoke mode too
#: (the delta is pure serialization work, which needs no scale).
FRAGMENT_RECIPES = 200
MIN_FRAGMENT_SPEEDUP = 1.2

_RESULTS: dict | None = None

_REPO_ROOT = Path(__file__).resolve().parent.parent
_CONTENT_LENGTH = re.compile(rb"content-length:\s*(\d+)", re.IGNORECASE)


# ----------------------------------------------------------------------
# raw-socket load client


def _render_request(path: str, body: str) -> bytes:
    payload = body.encode()
    return (
        f"POST {path} HTTP/1.1\r\nHost: bench\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n"
    ).encode() + payload


class _Conn:
    """One keep-alive benchmark connection (raw socket, buffered)."""

    __slots__ = ("sock", "buf")

    def __init__(self, host: str, port: int):
        self.sock = socket.create_connection((host, port), timeout=60)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.buf = b""

    def request(self, data: bytes) -> int:
        """Send one pre-rendered request, read one response, return
        its status code."""
        self.sock.sendall(data)
        while b"\r\n\r\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed mid-response")
            self.buf += chunk
        head, _, rest = self.buf.partition(b"\r\n\r\n")
        match = _CONTENT_LENGTH.search(head)
        length = int(match.group(1)) if match else 0
        while len(rest) < length:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed mid-body")
            rest += chunk
        self.buf = rest[length:]
        return int(head[9:12])

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def _run_closed_loop(
    host: str,
    port: int,
    requests: list[bytes],
    *,
    connections: int,
    total: int | None = None,
    duration_s: float | None = None,
) -> dict:
    """Closed-loop load: *connections* threads, each with its own
    keep-alive socket, pulling work off a shared counter.

    Exactly one of *total* (request count) or *duration_s* bounds the
    run.  Returns throughput + latency percentiles + error count.
    """
    assert (total is None) != (duration_s is None)
    counter = itertools.count()
    deadline = None if duration_s is None else time.perf_counter() + duration_s
    lock = threading.Lock()
    all_latencies: list[float] = []
    errors = [0]
    done = [0]

    def worker() -> None:
        conn = _Conn(host, port)
        latencies: list[float] = []
        local_errors = 0
        local_done = 0
        try:
            while True:
                i = next(counter)
                if total is not None and i >= total:
                    break
                if deadline is not None and time.perf_counter() >= deadline:
                    break
                data = requests[i % len(requests)]
                start = time.perf_counter()
                status = conn.request(data)
                latencies.append(time.perf_counter() - start)
                local_done += 1
                local_errors += status != 200
        finally:
            conn.close()
            with lock:
                all_latencies.extend(latencies)
                errors[0] += local_errors
                done[0] += local_done

    threads = [
        threading.Thread(target=worker, name=f"bench-conn-{i}")
        for i in range(connections)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    return {
        "connections": connections,
        **_percentiles(all_latencies),
        "errors": errors[0],
        "wall_s": round(wall, 3),
        "rps": round(done[0] / wall, 1) if wall > 0 else 0.0,
    }


def _percentiles(latencies_s: list[float]) -> dict:
    samples = sorted(value * 1000.0 for value in latencies_s)
    return {
        "count": len(samples),
        "p50_ms": round(percentile(samples, 0.50), 4),
        "p95_ms": round(percentile(samples, 0.95), 4),
        "p99_ms": round(percentile(samples, 0.99), 4),
        "max_ms": round(samples[-1], 4) if samples else 0.0,
    }


def _get_json(host: str, port: int, path: str) -> dict:
    """GET *path* over a fresh connection (used for /metrics scrapes)."""
    with socket.create_connection((host, port), timeout=30) as sock:
        sock.sendall(
            f"GET {path} HTTP/1.1\r\nHost: bench\r\n"
            "Connection: close\r\n\r\n".encode()
        )
        raw = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw += chunk
    return json.loads(raw.partition(b"\r\n\r\n")[2])


# ----------------------------------------------------------------------
# topologies


class _PreforkProc:
    """A real ``repro serve --procs N`` subprocess for the bench."""

    def __init__(self, procs: int, tag: str):
        self.ready_file = _REPO_ROOT / "results" / f".bench-ready-{tag}.txt"
        self.ready_file.parent.mkdir(parents=True, exist_ok=True)
        self.ready_file.unlink(missing_ok=True)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(_REPO_ROOT / "src")
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--procs", str(procs),
                "--ready-file", str(self.ready_file),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            cwd=str(_REPO_ROOT),
        )
        deadline = time.monotonic() + 120.0
        while True:
            if self.proc.poll() is not None:
                out = self.proc.stdout.read().decode(errors="replace")
                raise RuntimeError(f"bench serve exited early:\n{out}")
            if self.ready_file.exists():
                text = self.ready_file.read_text().strip()
                if text:
                    host, port = text.split()
                    self.host, self.port = host, int(port)
                    break
            if time.monotonic() > deadline:
                raise RuntimeError("bench serve never became ready")
            time.sleep(0.05)

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            self.proc.wait(timeout=30)
        self.ready_file.unlink(missing_ok=True)


def _aggregate_worker_metrics(
    host: str, port: int, procs: int
) -> dict:
    """Scrape ``/metrics`` until every ``worker_id`` answered, then
    sum the per-worker counters — the cross-process aggregation a
    scraper needs because each worker keeps its own registry."""
    per_worker: dict[int, dict] = {}
    for _ in range(400):
        snap = _get_json(host, port, "/metrics")
        per_worker[snap["server"]["worker_id"]] = snap
        if len(per_worker) == procs:
            break
    aggregate = {
        "requests_total": sum(
            s["requests_total"] for s in per_worker.values()
        ),
        "errors_total": sum(
            s["errors_total"] for s in per_worker.values()
        ),
        "cache_hits_total": sum(
            s["cache_hits_total"] for s in per_worker.values()
        ),
        "connections_opened": sum(
            s["connections"]["opened"] for s in per_worker.values()
        ),
    }
    return {
        "workers_seen": sorted(per_worker),
        "per_worker": {
            str(worker_id): {
                "pid": snap["server"]["pid"],
                "requests_total": snap["requests_total"],
                "cache_hits_total": snap["cache_hits_total"],
                "connections_opened": snap["connections"]["opened"],
            }
            for worker_id, snap in sorted(per_worker.items())
        },
        "aggregate": aggregate,
    }


# ----------------------------------------------------------------------
# workloads


def _build_workloads() -> dict:
    generator = RecipeGenerator(config=GeneratorConfig(seed=7))
    recipes = generator.generate(N_RECIPES)
    estimate = [
        _render_request(
            "/v1/estimate",
            json.dumps(
                {"ingredients": r.ingredient_texts, "servings": r.servings}
            ),
        )
        for r in recipes
    ]
    match = [
        _render_request(
            "/v1/match",
            json.dumps({"name": r.ingredients[0].text.split(",")[0][:60]}),
        )
        for r in recipes[:N_ENDPOINT]
    ]
    parse = [
        _render_request(
            "/v1/parse", json.dumps({"text": r.ingredients[0].text})
        )
        for r in recipes[:N_ENDPOINT]
    ]
    batch_body = json.dumps({
        "recipes": [
            {"ingredients": r.ingredient_texts, "servings": r.servings}
            for r in recipes
        ],
    })
    return {
        "estimate": estimate,
        "cached_cycle": estimate[:N_CACHED_DISTINCT],
        "match": match,
        "parse": parse,
        "batch": _render_request("/v1/estimate_batch", batch_body),
        "n_lines": sum(len(r.ingredients) for r in recipes),
    }


def _bench_inproc(work: dict) -> dict:
    started = time.perf_counter()
    with NutritionService(ServiceConfig(port=0)) as service:
        startup_s = time.perf_counter() - started
        host, port = service.host, service.port

        # Per-endpoint uncached series (distinct payloads, cold cache)
        # at moderate concurrency.
        endpoints: dict[str, dict] = {}
        uncached_runs = {
            "estimate": work["estimate"],
            "match": work["match"],
            "parse": work["parse"],
        }
        for name, reqs in uncached_runs.items():
            endpoints[name] = {
                "uncached": _run_closed_loop(
                    host, port, reqs, connections=10, total=len(reqs)
                )
            }
        # Cached series: the payloads above are warm now; repeat a
        # small cycle per endpoint.
        for name, reqs in uncached_runs.items():
            cycle = reqs[:N_CACHED_DISTINCT]
            endpoints[name]["cached"] = _run_closed_loop(
                host, port, cycle,
                connections=10,
                total=RAMP_LEVELS[10] if name == "estimate" else
                min(RAMP_LEVELS[10], 2000),
            )

        # Ramp: cached estimates at increasing concurrency.
        ramp = [
            _run_closed_loop(
                host, port, work["cached_cycle"],
                connections=level, total=total,
            )
            for level, total in sorted(RAMP_LEVELS.items())
        ]

        # Soak: sustained mixed workload.
        mixed = (
            work["cached_cycle"]
            + work["parse"][:N_CACHED_DISTINCT]
            + work["match"][:N_CACHED_DISTINCT]
        )
        soak = _run_closed_loop(
            host, port, mixed,
            connections=SOAK_CONNECTIONS, duration_s=SOAK_SECONDS,
        )

        # One corpus-sized batch request on a dedicated connection.
        conn = _Conn(host, port)
        batch_started = time.perf_counter()
        batch_status = conn.request(work["batch"])
        batch_s = time.perf_counter() - batch_started
        conn.close()

        metrics = _get_json(host, port, "/metrics")

    return {
        "startup_s": round(startup_s, 3),
        "endpoints": endpoints,
        "cached_ramp": ramp,
        "soak": soak,
        "estimate_batch": {
            "recipes": N_RECIPES,
            "lines": work["n_lines"],
            "status": batch_status,
            "seconds": round(batch_s, 3),
            "lines_per_s": round(work["n_lines"] / batch_s, 1),
        },
        "server_metrics": {
            "requests_total": metrics["requests_total"],
            "errors_total": metrics["errors_total"],
            "cache_hits_total": metrics["cache_hits_total"],
        },
    }


def _bench_prefork(work: dict, procs: int) -> dict:
    proc = _PreforkProc(procs, tag=f"procs{procs}")
    try:
        host, port = proc.host, proc.port
        # Warm every worker's cache: each worker misses each distinct
        # payload at most once, so a short scatter over fresh
        # connections is enough.
        for data in work["cached_cycle"] * (4 * procs):
            conn = _Conn(host, port)
            conn.request(data)
            conn.close()
        ramp = [
            _run_closed_loop(
                host, port, work["cached_cycle"],
                connections=level, total=total,
            )
            for level, total in sorted(RAMP_LEVELS.items())
        ]
        worker_metrics = _aggregate_worker_metrics(host, port, procs)
    finally:
        proc.stop()
    return {
        "procs": procs,
        "cached_ramp": ramp,
        "worker_metrics": worker_metrics,
    }


def _bench_fragment_cache() -> dict:
    """Serialized-estimate byte cache on repeated ``/v1/estimate_batch``.

    The workload the fragment cache exists for: a batch too large for
    the whole-response cache (> 256 KB serialized), repeated — every
    repeat re-estimates and re-assembles the body, but under the same
    stats token the per-ingredient JSON replays from cache instead of
    re-running ``json.dumps``.  The baseline clears the fragment cache
    before each run (same warm estimator, cold fragments), so the
    delta is serialization work alone."""
    from repro.service import codec
    from repro.service.state import ServiceState

    recipes = RecipeGenerator(
        config=GeneratorConfig(seed=7, line_reuse=0.87)
    ).generate(FRAGMENT_RECIPES)
    request = codec.BatchRequest(
        recipes=tuple(
            codec.EstimateRequest(
                ingredients=tuple(r.ingredient_texts), servings=r.servings
            )
            for r in recipes
        )
    )
    state = ServiceState(ServiceConfig(port=0))
    body = state.estimate_batch(request)  # warm estimator + fragments

    def timed(fn) -> float:
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    warm_s = min(timed(lambda: state.estimate_batch(request))
                 for _ in range(3))

    def cold_fragments():
        state._fragment_cache.clear()
        state.estimate_batch(request)

    cold_s = min(timed(cold_fragments) for _ in range(3))
    stats = state.caches_snapshot()["fragment"]
    return {
        "recipes": len(recipes),
        "body_bytes": len(body),
        "fragment_entries": stats["size"],
        "cold_fragments_ms": round(cold_s * 1000, 2),
        "warm_fragments_ms": round(warm_s * 1000, 2),
        "speedup": round(cold_s / warm_s, 2),
    }


def run_benchmark() -> dict:
    """Drive every topology and series once, return the results."""
    global _RESULTS
    if _RESULTS is not None:
        return _RESULTS

    work = _build_workloads()
    inproc = _bench_inproc(work)
    prefork = _bench_prefork(work, procs=2)
    fragment = _bench_fragment_cache()

    results = {
        "benchmark": "service",
        "smoke": SMOKE,
        "config": {
            "n_recipes": N_RECIPES,
            "n_cached_distinct": N_CACHED_DISTINCT,
            "ramp_levels": {
                str(level): total
                for level, total in sorted(RAMP_LEVELS.items())
            },
            "soak_connections": SOAK_CONNECTIONS,
            "soak_seconds": SOAK_SECONDS,
            "seed_single_process_rps": SEED_SINGLE_PROCESS_RPS,
            "min_cached_rps_1conn": MIN_CACHED_RPS_1CONN,
            "min_procs2_cached_rps": MIN_PROCS2_CACHED_RPS,
            "max_cached_p99_ms": MAX_CACHED_P99_MS,
        },
        "inproc": inproc,
        "procs2": prefork,
        "fragment_cache": fragment,
    }
    write_result("BENCH_service.json", json.dumps(results, indent=2))
    _RESULTS = results
    return results


def _ramp_level(results: dict, topology: str, connections: int) -> dict:
    for entry in results[topology]["cached_ramp"]:
        if entry["connections"] == connections:
            return entry
    raise KeyError(connections)


def _top_level(results: dict, topology: str) -> dict:
    return max(
        results[topology]["cached_ramp"],
        key=lambda entry: entry["connections"],
    )


# ----------------------------------------------------------------------
# assertions (pytest entry points)


def test_all_requests_succeed():
    results = run_benchmark()
    for name, series in results["inproc"]["endpoints"].items():
        assert series["uncached"]["errors"] == 0, name
        assert series["cached"]["errors"] == 0, name
    for entry in results["inproc"]["cached_ramp"]:
        assert entry["errors"] == 0, entry
    for entry in results["procs2"]["cached_ramp"]:
        assert entry["errors"] == 0, entry
    assert results["inproc"]["soak"]["errors"] == 0
    assert results["inproc"]["estimate_batch"]["status"] == 200
    assert results["inproc"]["server_metrics"]["errors_total"] == 0


def test_cached_repeats_sustain_rps_floor():
    results = run_benchmark()
    level = _ramp_level(results, "inproc", 1)
    assert level["rps"] >= MIN_CACHED_RPS_1CONN, (
        f"cached repeats at {level['rps']} req/s over one connection "
        f"(floor {MIN_CACHED_RPS_1CONN}); p50 {level['p50_ms']} ms"
    )


def test_procs2_beats_seed_single_process_throughput():
    results = run_benchmark()
    best = max(
        entry["rps"] for entry in results["procs2"]["cached_ramp"]
    )
    assert best >= MIN_PROCS2_CACHED_RPS, (
        f"--procs 2 peaked at {best} req/s "
        f"(floor {MIN_PROCS2_CACHED_RPS})"
    )


def test_p99_within_ceiling_at_high_concurrency():
    results = run_benchmark()
    for topology in ("inproc", "procs2"):
        top = _top_level(results, topology)
        assert top["p99_ms"] <= MAX_CACHED_P99_MS, (
            f"{topology} p99 {top['p99_ms']} ms at "
            f"{top['connections']} connections "
            f"(ceiling {MAX_CACHED_P99_MS} ms)"
        )


def test_load_spreads_across_workers():
    results = run_benchmark()
    metrics = results["procs2"]["worker_metrics"]
    assert metrics["workers_seen"] == [0, 1]
    for worker_id, snap in metrics["per_worker"].items():
        assert snap["requests_total"] > 0, f"worker {worker_id} idle"
    issued = sum(
        entry["count"] for entry in results["procs2"]["cached_ramp"]
    )
    assert metrics["aggregate"]["requests_total"] >= issued


def test_cache_actually_served_the_repeats():
    results = run_benchmark()
    ramp_total = sum(
        entry["count"] for entry in results["inproc"]["cached_ramp"]
    )
    assert (
        results["inproc"]["server_metrics"]["cache_hits_total"]
        >= ramp_total - N_CACHED_DISTINCT
    )


def test_cached_is_faster_than_uncached():
    results = run_benchmark()
    estimate = results["inproc"]["endpoints"]["estimate"]
    assert estimate["cached"]["p50_ms"] < estimate["uncached"]["p50_ms"]


def test_fragment_cache_speeds_repeated_batches():
    """Floor enforced in smoke mode too: warm fragments must beat a
    cleared fragment cache on the repeated oversized batch."""
    results = run_benchmark()
    fragment = results["fragment_cache"]
    assert fragment["body_bytes"] > 256 * 1024, fragment
    assert fragment["speedup"] >= MIN_FRAGMENT_SPEEDUP, fragment


if __name__ == "__main__":
    print(json.dumps(run_benchmark(), indent=2))
