"""HTTP service latency/throughput — the PR 3 tentpole benchmark.

Boots a live :class:`repro.service.NutritionService` on an
OS-assigned port and drives it over one keep-alive connection (the
client a downstream consumer would write), measuring client-observed
per-request latency for:

* **uncached `/v1/estimate`** — distinct recipes from a generated
  corpus (every request runs the full pipeline),
* **cached repeats** — a small payload set cycled many times, served
  from the response cache; the acceptance floor is sustained
  ≥ 1,000 req/s (≥ 300 in CI smoke mode, where the benchmark shares
  one core with the server thread *and* the CI matrix),
* **`/v1/match` and `/v1/parse`** — the lighter endpoints,
* **`/v1/estimate_batch`** — the whole corpus in one request, with
  per-line throughput.

Each series records p50/p95/p99/max milliseconds into
``results/BENCH_service.json`` so the latency trajectory is tracked
from PR 3 onward.

Run::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q
    PYTHONPATH=src python benchmarks/bench_service.py   # standalone
    REPRO_BENCH_SMOKE=1 ...                             # CI smoke
"""

from __future__ import annotations

import http.client
import json
import os
import time

from conftest import write_result

from repro import RecipeGenerator
from repro.recipedb.generator import GeneratorConfig
from repro.service import NutritionService, ServiceConfig
from repro.service.metrics import percentile

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

#: Recipes in the uncached series / the batch request.
N_RECIPES = 40 if SMOKE else 200
#: Requests in the cached-repeat series.
N_CACHED = 600 if SMOKE else 5000
#: Distinct payloads the cached series cycles through.
N_CACHED_DISTINCT = 8
#: Acceptance floor for cached repeats, requests per second.
MIN_CACHED_RPS = 300.0 if SMOKE else 1000.0

_RESULTS: dict | None = None


def _percentiles(latencies_s: list[float]) -> dict:
    samples = sorted(value * 1000.0 for value in latencies_s)
    return {
        "count": len(samples),
        "p50_ms": round(percentile(samples, 0.50), 4),
        "p95_ms": round(percentile(samples, 0.95), 4),
        "p99_ms": round(percentile(samples, 0.99), 4),
        "max_ms": round(samples[-1], 4) if samples else 0.0,
    }


def _timed_post(conn, path: str, body: str) -> tuple[float, int, bytes]:
    start = time.perf_counter()
    conn.request("POST", path, body)
    response = conn.getresponse()
    payload = response.read()
    return time.perf_counter() - start, response.status, payload


def _drive(conn, path: str, bodies: list[str]) -> tuple[list[float], int]:
    """POST each body once; returns (latencies, error count)."""
    latencies: list[float] = []
    errors = 0
    for body in bodies:
        elapsed, status, _ = _timed_post(conn, path, body)
        latencies.append(elapsed)
        errors += status != 200
    return latencies, errors


def run_benchmark() -> dict:
    """Boot a service, drive every series once, return the results."""
    global _RESULTS
    if _RESULTS is not None:
        return _RESULTS

    generator = RecipeGenerator(config=GeneratorConfig(seed=7))
    recipes = generator.generate(N_RECIPES)
    estimate_bodies = [
        json.dumps(
            {"ingredients": r.ingredient_texts, "servings": r.servings}
        )
        for r in recipes
    ]

    started = time.perf_counter()
    with NutritionService(ServiceConfig(port=0)) as service:
        startup_s = time.perf_counter() - started
        conn = http.client.HTTPConnection(
            service.host, service.port, timeout=120
        )

        # --- uncached estimates: every payload distinct, full pipeline.
        uncached, uncached_errors = _drive(
            conn, "/v1/estimate", estimate_bodies
        )

        # --- cached repeats: cycle a small payload set (now warm).
        cycle = estimate_bodies[:N_CACHED_DISTINCT]
        cached: list[float] = []
        cached_errors = 0
        cached_started = time.perf_counter()
        for i in range(N_CACHED):
            elapsed, status, _ = _timed_post(
                conn, "/v1/estimate", cycle[i % len(cycle)]
            )
            cached.append(elapsed)
            cached_errors += status != 200
        cached_wall = time.perf_counter() - cached_started
        cached_rps = N_CACHED / cached_wall

        # --- match / parse: distinct then repeated queries.
        match_bodies = [
            json.dumps({"name": r.ingredients[0].text.split(",")[0][:60]})
            for r in recipes[: min(N_RECIPES, 100)]
        ]
        match_latencies, match_errors = _drive(
            conn, "/v1/match", match_bodies
        )
        parse_bodies = [
            json.dumps({"text": r.ingredients[0].text})
            for r in recipes[: min(N_RECIPES, 100)]
        ]
        parse_latencies, parse_errors = _drive(
            conn, "/v1/parse", parse_bodies
        )

        # --- one corpus-sized batch request.
        batch_body = json.dumps({
            "recipes": [
                {"ingredients": r.ingredient_texts, "servings": r.servings}
                for r in recipes
            ],
        })
        batch_s, batch_status, batch_payload = _timed_post(
            conn, "/v1/estimate_batch", batch_body
        )
        n_lines = sum(len(r.ingredients) for r in recipes)

        # --- server-side view for cross-checking.
        conn.request("GET", "/metrics")
        metrics = json.loads(conn.getresponse().read())
        conn.close()

    results = {
        "benchmark": "service",
        "smoke": SMOKE,
        "config": {
            "n_recipes": N_RECIPES,
            "n_cached_requests": N_CACHED,
            "n_cached_distinct": N_CACHED_DISTINCT,
            "min_cached_rps": MIN_CACHED_RPS,
        },
        "startup_s": round(startup_s, 3),
        "estimate_uncached": {
            **_percentiles(uncached),
            "errors": uncached_errors,
            "rps": round(len(uncached) / sum(uncached), 1),
        },
        "estimate_cached": {
            **_percentiles(cached),
            "errors": cached_errors,
            "rps": round(cached_rps, 1),
        },
        "match": {**_percentiles(match_latencies), "errors": match_errors},
        "parse": {**_percentiles(parse_latencies), "errors": parse_errors},
        "estimate_batch": {
            "recipes": N_RECIPES,
            "lines": n_lines,
            "status": batch_status,
            "seconds": round(batch_s, 3),
            "lines_per_s": round(n_lines / batch_s, 1),
            "response_bytes": len(batch_payload),
        },
        "server_metrics": {
            "requests_total": metrics["requests_total"],
            "errors_total": metrics["errors_total"],
            "cache_hits_total": metrics["cache_hits_total"],
        },
    }
    write_result("BENCH_service.json", json.dumps(results, indent=2))
    _RESULTS = results
    return results


# ----------------------------------------------------------------------
# assertions (pytest entry points)


def test_all_requests_succeed():
    results = run_benchmark()
    assert results["estimate_uncached"]["errors"] == 0
    assert results["estimate_cached"]["errors"] == 0
    assert results["match"]["errors"] == 0
    assert results["parse"]["errors"] == 0
    assert results["estimate_batch"]["status"] == 200
    assert results["server_metrics"]["errors_total"] == 0


def test_cached_repeats_sustain_rps_floor():
    results = run_benchmark()
    cached = results["estimate_cached"]
    assert cached["rps"] >= MIN_CACHED_RPS, (
        f"cached repeats at {cached['rps']} req/s "
        f"(floor {MIN_CACHED_RPS}); p50 {cached['p50_ms']} ms"
    )


def test_cache_actually_served_the_repeats():
    results = run_benchmark()
    # Everything past the first cycle of distinct payloads must hit.
    expected_hits = N_CACHED - N_CACHED_DISTINCT
    assert results["server_metrics"]["cache_hits_total"] >= expected_hits


def test_cached_is_faster_than_uncached():
    results = run_benchmark()
    assert (
        results["estimate_cached"]["p50_ms"]
        < results["estimate_uncached"]["p50_ms"]
    )


if __name__ == "__main__":
    print(json.dumps(run_benchmark(), indent=2))
