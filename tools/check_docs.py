#!/usr/bin/env python3
"""Documentation checks: intra-repo links resolve, code snippets parse.

**Links** — scans every tracked ``*.md`` file for inline markdown
links and reference definitions, ignores external targets
(``http(s)://``, ``mailto:``) and pure in-page anchors (``#...``),
resolves relative targets against the linking file's directory, and
fails if a target (file or directory) does not exist.  Targets may
carry an anchor suffix (``docs/api.md#errors``) — only the path part
is checked.

**Snippets** — extracts every fenced ```` ```python ```` block from
the same files and ``compile()``s it, so documentation code cannot
silently rot into syntax errors when the API changes shape.
Doctest-style blocks (``>>>`` prompts) are reassembled from their
prompt lines before compiling.  Compilation checks syntax only — it
proves the snippet is current Python, not that it runs; runnable
walkthroughs belong in ``examples/`` where CI executes them.

Exits 0 when every link resolves and every snippet compiles, 1
otherwise — run directly in CI::

    python tools/check_docs.py

Also importable: ``tests/test_docs.py`` runs the same checks inside
the tier-1 suite so broken docs fail locally before CI.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline links/images: [text](target) / ![alt](target), plus
#: reference definitions: [label]: target
_INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)

#: Fenced code blocks with an info string, non-greedy to the closing
#: fence.  Group 1: info string (language tag), group 2: body.
_FENCE = re.compile(
    r"^```([^\n`]*)\n(.*?)^```[ \t]*$", re.MULTILINE | re.DOTALL
)

#: Info-string values treated as Python.
_PYTHON_LANGS = frozenset({"python", "py", "python3"})

_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root: Path = REPO_ROOT) -> list[Path]:
    """All repo markdown files, skipping VCS/cache directories."""
    skip_parts = {".git", "__pycache__", ".pytest_cache", "node_modules"}
    return sorted(
        path
        for path in root.rglob("*.md")
        if not skip_parts & set(path.relative_to(root).parts)
    )


def extract_targets(text: str) -> list[str]:
    targets = _INLINE_LINK.findall(text)
    targets.extend(_REF_DEF.findall(text))
    return targets


def broken_links(root: Path = REPO_ROOT) -> list[str]:
    """``"file: target"`` for every intra-repo link that fails to resolve."""
    problems: list[str] = []
    for md_file in markdown_files(root):
        text = md_file.read_text(encoding="utf-8")
        for target in extract_targets(text):
            if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md_file.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(
                    f"{md_file.relative_to(root)}: broken link -> {target}"
                )
    return problems


def _dedent_doctest(body: str) -> str:
    """Reassemble executable code from a ``>>>``-style doctest block."""
    lines: list[str] = []
    for raw in body.splitlines():
        stripped = raw.lstrip()
        if stripped.startswith(">>>"):
            lines.append(stripped[3:].removeprefix(" "))
        elif stripped.startswith("...") and lines:
            lines.append(stripped[3:].removeprefix(" "))
        # Anything else is expected output; skip it.
    return "\n".join(lines)


def extract_python_snippets(text: str) -> list[tuple[int, str]]:
    """``(start line, code)`` for every fenced python block in *text*.

    Doctest-style blocks are converted to plain statements; other
    blocks compile as written.
    """
    snippets: list[tuple[int, str]] = []
    for match in _FENCE.finditer(text):
        lang = match.group(1).strip().split()[0].lower() if match.group(1).strip() else ""
        if lang not in _PYTHON_LANGS:
            continue
        body = match.group(2)
        if any(
            line.lstrip().startswith(">>>") for line in body.splitlines()
        ):
            body = _dedent_doctest(body)
        line = text.count("\n", 0, match.start(2)) + 1
        snippets.append((line, body))
    return snippets


def snippet_report(root: Path = REPO_ROOT) -> tuple[list[str], int]:
    """(compile problems, total python snippets) over all markdown files.

    Problems read ``"file:line: error"``; the count lets callers
    assert the check is actually exercising blocks rather than
    vacuously passing on zero extractions.
    """
    problems: list[str] = []
    total = 0
    for md_file in markdown_files(root):
        text = md_file.read_text(encoding="utf-8")
        for line, code in extract_python_snippets(text):
            total += 1
            try:
                compile(code, f"{md_file.relative_to(root)}:{line}", "exec")
            except SyntaxError as exc:
                problems.append(
                    f"{md_file.relative_to(root)}:{line}: snippet does "
                    f"not compile — {exc.msg} (line {exc.lineno})"
                )
    return problems, total


def broken_snippets(root: Path = REPO_ROOT) -> list[str]:
    """``"file:line: error"`` for every python fence that fails to parse."""
    return snippet_report(root)[0]


def main() -> int:
    files = markdown_files(REPO_ROOT)
    snippet_problems, n_snippets = snippet_report(REPO_ROOT)
    problems = broken_links(REPO_ROOT) + snippet_problems
    for problem in problems:
        print(problem)
    print(
        f"checked {len(files)} markdown file(s), {n_snippets} python "
        f"snippet(s): {len(problems)} problem(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
