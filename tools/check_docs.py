#!/usr/bin/env python3
"""Check that intra-repo markdown links resolve to real files.

Scans every tracked ``*.md`` file for inline markdown links and
reference definitions, ignores external targets (``http(s)://``,
``mailto:``) and pure in-page anchors (``#...``), resolves
relative targets against the linking file's directory, and fails if a
target (file or directory) does not exist.  Targets may carry an
anchor suffix (``docs/api.md#errors``) — only the path part is
checked.

Exits 0 when every link resolves, 1 otherwise — run directly in CI::

    python tools/check_docs.py

Also importable: ``tests/test_docs.py`` runs the same check inside the
tier-1 suite so broken links fail locally before CI.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline links/images: [text](target) / ![alt](target), plus
#: reference definitions: [label]: target
_INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)

_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root: Path = REPO_ROOT) -> list[Path]:
    """All repo markdown files, skipping VCS/cache directories."""
    skip_parts = {".git", "__pycache__", ".pytest_cache", "node_modules"}
    return sorted(
        path
        for path in root.rglob("*.md")
        if not skip_parts & set(path.relative_to(root).parts)
    )


def extract_targets(text: str) -> list[str]:
    targets = _INLINE_LINK.findall(text)
    targets.extend(_REF_DEF.findall(text))
    return targets


def broken_links(root: Path = REPO_ROOT) -> list[str]:
    """``"file: target"`` for every intra-repo link that fails to resolve."""
    problems: list[str] = []
    for md_file in markdown_files(root):
        text = md_file.read_text(encoding="utf-8")
        for target in extract_targets(text):
            if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md_file.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(
                    f"{md_file.relative_to(root)}: broken link -> {target}"
                )
    return problems


def main() -> int:
    files = markdown_files()
    problems = broken_links()
    for problem in problems:
        print(problem)
    print(
        f"checked {len(files)} markdown file(s): "
        f"{len(problems)} broken link(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
